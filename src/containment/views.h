#ifndef FLOQ_CONTAINMENT_VIEWS_H_
#define FLOQ_CONTAINMENT_VIEWS_H_

#include <optional>
#include <string>
#include <vector>

#include "containment/containment.h"
#include "containment/engine.h"
#include "query/conjunctive_query.h"
#include "term/world.h"
#include "util/status.h"

// Answering queries using views — the classic application of query
// containment the paper's §1 cites ("query containment is key to query
// optimization and schema integration"). Given materialized views (CQs
// over P_FL) and a query, containment under Sigma_FL classifies each view
// by usability:
//
//   * SOUND     — V ⊆ Q: every view tuple is an answer; the view can feed
//                 Q's answer set without false positives.
//   * COMPLETE  — Q ⊆ V: the view misses no answer; Q can be evaluated
//                 over the view's output alone (with a residual filter).
//   * EXACT     — both: V ≡ Q; the view *is* the query.
//   * IRRELEVANT otherwise (for this analysis; partial rewritings over
//                 view joins are out of scope).
//
// The constraints matter here exactly as for containment: a view over a
// superclass is complete for a query over a subclass because of rho_3,
// invisible classically.

namespace floq {

enum class ViewUsability {
  kExact,
  kSound,
  kComplete,
  kIrrelevant,
};

const char* ViewUsabilityName(ViewUsability usability);

struct ViewAnalysis {
  /// Usability verdict per view, aligned with the input vector.
  std::vector<ViewUsability> usability;
  /// Index of the first EXACT view, if any.
  std::optional<size_t> exact_view;
  /// Indexes of COMPLETE (or EXACT) views: candidates to answer Q from.
  std::vector<size_t> complete_views;
  /// Indexes of SOUND (or EXACT) views: safe contributors to Q's answers.
  std::vector<size_t> sound_views;
  /// Ordered pairs the analysis submitted to the engine (2 per usable
  /// view), including pairs the signature prefilter discharged.
  int containment_checks = 0;
  /// Of those, pairs discharged by the signature prefilter (signature.h)
  /// as definite kNotContained with no chase or hom work.
  int pruned_checks = 0;
};

/// Classifies every view against the query under Sigma_FL. All queries
/// must share the query's arity (others are reported kIrrelevant). The 2m
/// containment checks run through a ContainmentEngine: the query and every
/// view are chased once each, and the homomorphism searches fan out over
/// `options.jobs` threads.
Result<ViewAnalysis> AnalyzeViews(World& world, const ConjunctiveQuery& query,
                                  const std::vector<ConjunctiveQuery>& views,
                                  const BatchContainmentOptions& options = {});

/// Convenience overload for callers holding plain per-pair options; runs
/// with the default thread count.
Result<ViewAnalysis> AnalyzeViews(World& world, const ConjunctiveQuery& query,
                                  const std::vector<ConjunctiveQuery>& views,
                                  const ContainmentOptions& options);

/// Renders the analysis as a table.
std::string ViewAnalysisToString(const ViewAnalysis& analysis,
                                 const ConjunctiveQuery& query,
                                 const std::vector<ConjunctiveQuery>& views,
                                 const World& world);

}  // namespace floq

#endif  // FLOQ_CONTAINMENT_VIEWS_H_
