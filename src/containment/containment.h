#ifndef FLOQ_CONTAINMENT_CONTAINMENT_H_
#define FLOQ_CONTAINMENT_CONTAINMENT_H_

#include <optional>
#include <span>
#include <vector>

#include "chase/chase.h"
#include "chase/dependencies.h"
#include "chase/generic_chase.h"
#include "containment/governor.h"
#include "containment/homomorphism.h"
#include "query/conjunctive_query.h"
#include "term/world.h"
#include "util/status.h"

// Containment of conjunctive object meta-queries under Sigma_FL — the
// paper's main result. CheckContainment decides q1 ⊆_Sigma q2 by
// materializing chase_Sigma(q1) up to level |q2| · 2|q1| (Theorem 12) and
// searching for a homomorphism from q2 (Theorem 4). Two weaker, sound-but-
// incomplete baselines are provided for the benchmarks: classical
// Chandra–Merlin containment (constraints ignored) and containment against
// level 0 only (the terminating Sigma_FL^- chase).

namespace floq {

/// How deep to chase q1 before the homomorphism search.
enum class ChaseDepth {
  /// The paper's bound: |q2| * 2|q1| levels (Theorem 12). Complete.
  kPaperBound,
  /// Level 0 only (Sigma_FL minus rho_5). Sound, incomplete.
  kLevelZero,
  /// No chase at all: classical containment (Chandra & Merlin 1977).
  /// Sound, incomplete under constraints.
  kNone,
};

/// The level cap of Theorem 12: |q2| * delta with delta = 2|q1|.
int PaperLevelBound(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

struct ContainmentOptions {
  ChaseDepth depth = ChaseDepth::kPaperBound;
  /// Overrides the level cap when >= 0 (used by convergence experiments).
  int level_override = -1;
  /// Budget on materialized chase conjuncts; exceeding it yields
  /// kResourceExhausted (the decision problem is NP-hard, Theorem 13 gives
  /// a *nondeterministic* polynomial algorithm).
  uint64_t max_chase_atoms = 2'000'000;
  /// Homomorphism search configuration (compiled kernel, list
  /// intersection, atom ordering) — forwarded to every hom search this
  /// check runs. Defaults to the production kernel; the differential
  /// tests and ablation benches flip the toggles.
  MatchOptions match;
  /// Resource governance: wall-clock timeout/deadline, cancellation
  /// token, and hom-search step budget. When any of these trips before
  /// the check is decided, the result degrades to
  /// Resolution::kUnknown with a typed reason instead of a spurious
  /// "not contained" (see governor.h for the soundness argument).
  ResourceBudget budget;
  /// Record chase-graph cross-arcs (Definition 3(4)) in result.chase so a
  /// DOT export shows the full graph. Extra bookkeeping; off by default.
  /// Used by `floq explain --chase-dot`.
  bool record_cross_arcs = false;
  /// Run the signature prefilter (signature.h) as stage 0 of the batch
  /// engine's per-pair pipeline: pairs whose predicate/constant subset
  /// test fails are discharged kNotContained with zero chase or hom work.
  /// Consulted by ContainmentEngine / ContainmentIndex / the classifier
  /// and view analysis; the one-shot checkers below ignore it. `floq
  /// classify --no-prune` turns it off.
  bool use_signature_index = true;
  /// Chase levels the engine's registration-time signature probe
  /// materializes (ChaseDepth::kPaperBound only; level-0 mode probes
  /// level 0). A completed probe makes the closure signature exact; an
  /// inconclusive one falls back to the static Sigma_FL closure.
  int signature_probe_levels = 2;
  /// Schedule the batch engine's per-pair pipeline cheapest-predicted
  /// first (analysis/cost_model.h): registration profiles each query from
  /// its probe chase, every pair gets a static cost estimate, and both
  /// the sequential chase phase and the hom fan-out run in ascending
  /// predicted-cost order, so early verdicts land on the cheap pairs and
  /// a runaway pair cannot starve them. Also calibrates the per-pair hom
  /// step budget (ResourceBudget::FromEstimate) when one is set. Verdicts
  /// are estimate-independent: reordering never changes a
  /// CONTAINED/NOT_CONTAINED answer, and calibration only raises budgets,
  /// so kUnknowns can only decrease. `floq classify --cost-schedule`
  /// turns it on.
  bool use_cost_scheduling = false;
};

struct ContainmentResult {
  /// The verdict: q1 ⊆_Sigma q2. Kept for callers that predate the
  /// three-valued resolution; always equals
  /// (resolution == Resolution::kContained).
  bool contained = false;

  /// The three-valued verdict. kUnknown means a resource budget tripped
  /// before the check was decided; `unknown_reason` names it. Positive
  /// verdicts are sound even under trips (a homomorphism into a chase
  /// prefix composes into the universal model); negatives require the
  /// full materialization and an exhausted search.
  Resolution resolution = Resolution::kNotContained;

  /// The budget that made the verdict kUnknown (kNone otherwise). When
  /// both stages tripped, the chase stage (the earlier one) wins.
  TripReason unknown_reason = TripReason::kNone;

  /// False only for CheckContainmentUnderDependencies on a
  /// non-weakly-acyclic set with a level override: a negative verdict is
  /// then inconclusive (the homomorphism could exist deeper).
  bool conclusive = true;

  /// True when containment holds vacuously because chase(q1) failed
  /// (rho_4 equated two distinct constants): q1 is unsatisfiable under
  /// Sigma_FL and returns no answers on any legal database.
  bool q1_unsatisfiable = false;

  /// The homomorphism body(q2) -> chase(q1) when contained (empty when
  /// q1_unsatisfiable).
  std::optional<Substitution> witness;

  /// The materialized chase of q1. When not contained, this (frozen) is
  /// the counterexample database: q1 yields chase_head on it, q2 does not.
  ChaseResult chase;

  /// Level cap that was used (-1 when depth == kNone).
  int level_bound = -1;

  /// Homomorphism search effort.
  MatchStats hom_stats;

  /// Wall-clock cost of each stage of this check (zero for stages that
  /// never ran). Surfaced by `floq explain --profile`.
  double chase_ms = 0.0;
  double hom_ms = 0.0;
};

/// Decides q1 ⊆_Sigma_FL q2. Fails with kInvalidArgument if the queries
/// have different arities or are malformed. Resource trips (the chase
/// atom budget, the hom step budget, a deadline, cancellation) do not
/// fail the call: they surface as resolution == kUnknown with a typed
/// unknown_reason, so batch callers can keep definite verdicts for the
/// other pairs.
Result<ContainmentResult> CheckContainment(World& world,
                                           const ConjunctiveQuery& q1,
                                           const ConjunctiveQuery& q2,
                                           const ContainmentOptions& options =
                                               {});

/// Classical conjunctive-query containment q1 ⊆ q2 over unconstrained
/// databases: a homomorphism body(q2) -> body(q1) with head(q2) -> head(q1).
/// Only options.match and options.budget (hom stage) are consulted.
Result<ContainmentResult> CheckClassicalContainment(
    World& world, const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
    const ContainmentOptions& options = {});

/// Equivalence under Sigma_FL: containment in both directions.
Result<bool> CheckEquivalence(World& world, const ConjunctiveQuery& q1,
                              const ConjunctiveQuery& q2,
                              const ContainmentOptions& options = {});

/// Containment in a union of conjunctive queries: q ⊆_Sigma q1 ∪ ... ∪ qn
/// iff some disjunct maps into chase_Sigma(q) within the per-disjunct
/// bound (the standard disjunct-wise argument; see DESIGN.md §7). Returns
/// the index of the first disjunct that witnesses containment, or nullopt.
Result<std::optional<size_t>> CheckUcqContainment(
    World& world, const ConjunctiveQuery& q,
    std::span<const ConjunctiveQuery> disjuncts,
    const ContainmentOptions& options = {});

/// Containment under a *user* dependency set (the paper's future-work
/// direction, realized through the generic chase): q1 ⊆_Sigma q2 for any
/// set of TGDs/EGDs.
///   * If the set is weakly acyclic, the chase terminates and the check is
///     sound and complete (Theorem 4 + Fagin et al. universality).
///   * Otherwise options.level_override must be set (>= 0); positive
///     verdicts remain sound, negative verdicts are flagged inconclusive
///     (result.conclusive = false). Without an override the call fails
///     with kFailedPrecondition.
Result<ContainmentResult> CheckContainmentUnderDependencies(
    World& world, const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
    const DependencySet& dependencies, const ContainmentOptions& options = {});

/// Containment of a union in a union: lhs_1 ∪ ... ∪ lhs_m ⊆_Sigma
/// rhs_1 ∪ ... ∪ rhs_n iff every lhs_i is contained in the rhs union.
/// Returns the index of the first violating lhs disjunct, or nullopt when
/// the containment holds.
Result<std::optional<size_t>> CheckUnionContainment(
    World& world, std::span<const ConjunctiveQuery> lhs,
    std::span<const ConjunctiveQuery> rhs,
    const ContainmentOptions& options = {});

}  // namespace floq

#endif  // FLOQ_CONTAINMENT_CONTAINMENT_H_
