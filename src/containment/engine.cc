#include "containment/engine.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <optional>

#include "analysis/cost_model.h"
#include "containment/homomorphism.h"
#include "util/metrics.h"
#include "util/request_context.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace floq {

namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
      .count();
}

}  // namespace

// Per-query cache slot. `chase` (or `body_index` in kNone mode) is built
// the first time the query appears as a left-hand side and reused — and
// deepened, never rebuilt — by every later pair.
struct ContainmentEngine::Entry {
  ConjunctiveQuery query;
  // The rhs pattern: variables renamed apart from every chase value (chase
  // conjuncts carry the chased query's variables as values; see the
  // matcher discipline note in DESIGN.md §4). Renamed once at
  // registration, shared read-only by all workers.
  ConjunctiveQuery renamed;
  std::optional<ResumableChase> chase;
  // ChaseDepth::kNone target: body(q) as a plain fact index.
  std::optional<FactIndex> body_index;
  // Stage-0 prefilter signature, computed once at registration from the
  // probe chase (absent when use_signature_index is off).
  std::optional<ClosureSignature> signature;
  // Cost-model profiles (use_cost_scheduling only): the query's probe
  // statistics as a chase target and its join shape as a hom pattern.
  // Registration-time snapshots — the scheduler never touches the live
  // chase index.
  std::optional<analysis::TargetProfile> target_profile;
  std::optional<analysis::PatternProfile> pattern_profile;
};

ContainmentEngine::ContainmentEngine(World& world,
                                     const BatchContainmentOptions& options)
    : world_(world), options_(options) {}

ContainmentEngine::~ContainmentEngine() = default;

Result<size_t> ContainmentEngine::AddQuery(const ConjunctiveQuery& query) {
  FLOQ_RETURN_IF_ERROR(query.Validate(world_));
  auto entry = std::make_unique<Entry>();
  entry->query = query;
  entry->renamed = query.RenameApart(world_);
  const ContainmentOptions& copts = options_.containment;
  const ChaseResult* probe = nullptr;
  if ((copts.use_signature_index || copts.use_cost_scheduling) &&
      copts.depth != ChaseDepth::kNone) {
    // The probe IS the pair pipeline's cached chase handle: whatever it
    // materializes here is reused — and deepened, never rebuilt — by
    // every later pair with this query on the left. It runs under the
    // same governed budget as a pair's chase stage, so a runaway query
    // cannot stall registration; an inconclusive probe just degrades
    // the signature to the static closure (and the cost fit to a wider
    // extrapolation).
    ChaseOptions chase_options;
    chase_options.max_atoms = copts.max_chase_atoms;
    ExecGovernor governor = MakeChaseGovernor(copts.budget);
    governor.AddCancellation(cancel_source_.token());
    const int probe_level = copts.depth == ChaseDepth::kLevelZero
                                ? 0
                                : std::max(copts.signature_probe_levels, 0);
    ++stats_.chases_run;
    entry->chase.emplace(world_, entry->query, chase_options);
    probe = &entry->chase->EnsureLevel(probe_level, &governor);
    FoldGovernorMetrics(governor);
  }
  if (copts.use_signature_index) {
    entry->signature =
        ComputeClosureSignature(entry->query, copts.depth, probe);
  }
  if (copts.use_cost_scheduling) {
    // The rhs pattern is the renamed copy — the one the hom search
    // actually runs — though only its shape matters here.
    entry->pattern_profile = analysis::ProfilePattern(entry->renamed);
    if (probe != nullptr) {
      entry->target_profile = analysis::ProfileTarget(*probe);
    } else {
      // kNone mode: the target is body(q) verbatim, an exact "chase".
      FactIndex body;
      for (const Atom& atom : entry->query.body()) body.Insert(atom);
      entry->target_profile = analysis::ProfileFacts(body);
    }
  }
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

size_t ContainmentEngine::query_count() const { return entries_.size(); }

const ConjunctiveQuery& ContainmentEngine::query(size_t id) const {
  FLOQ_CHECK_LT(id, entries_.size());
  return entries_[id]->query;
}

const ChaseResult* ContainmentEngine::chase_of(size_t id) const {
  FLOQ_CHECK_LT(id, entries_.size());
  const Entry& entry = *entries_[id];
  return entry.chase.has_value() ? &entry.chase->result() : nullptr;
}

const ClosureSignature* ContainmentEngine::signature_of(size_t id) const {
  FLOQ_CHECK_LT(id, entries_.size());
  const Entry& entry = *entries_[id];
  return entry.signature.has_value() ? &*entry.signature : nullptr;
}

namespace {

void MarkPairContained(PairVerdict& verdict) {
  verdict.contained = true;
  verdict.resolution = Resolution::kContained;
  verdict.unknown_reason = TripReason::kNone;
}

void MarkPairUnknown(PairVerdict& verdict, TripReason reason) {
  verdict.contained = false;
  verdict.resolution = Resolution::kUnknown;
  verdict.unknown_reason = reason;
}

// Writes the elapsed milliseconds since construction into *out at scope
// exit — times a per-pair stage across its early `continue`s / `return`s.
class StageTimer {
 public:
  explicit StageTimer(double* out) : out_(out) {}
  ~StageTimer() { *out_ = MsSince(start_); }

 private:
  double* out_;
  SteadyClock::time_point start_ = SteadyClock::now();
};

}  // namespace

void ContainmentEngine::Cancel() { cancel_source_.Cancel(); }

void ContainmentEngine::ResetCancel() { cancel_source_.Reset(); }

template <class OutFn>
Status ContainmentEngine::CheckPairsCore(
    std::span<const std::pair<size_t, size_t>> pairs, OutFn&& out) {
  const ContainmentOptions& copts = options_.containment;
  const ResourceBudget& budget = copts.budget;
  // Snapshot the token once: worker threads copy it concurrently below,
  // and ResetCancel (which swaps the shared flag) is only legal between
  // batches.
  const CancellationToken engine_token = cancel_source_.token();

  // Validate against dense per-query arities: chasing pointers through
  // entries_ for every one of n(n-1) pairs costs more than the whole
  // signature stage.
  const size_t num_queries = entries_.size();
  std::vector<int> arities(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    arities[i] = entries_[i]->query.arity();
  }
  for (const auto& [lhs, rhs] : pairs) {
    if (lhs >= num_queries || rhs >= num_queries) {
      return InvalidArgumentError("pair refers to an unregistered query id");
    }
    if (arities[lhs] != arities[rhs]) {
      return InvalidArgumentError(
          StrCat("containment requires equal arities; got ",
                 arities[lhs], " and ", arities[rhs]));
    }
  }

  TraceSpan batch_span("engine.check_pairs");
  AnnotateWithRequest(batch_span);
  if (batch_span.active()) {
    batch_span.Arg("pairs", int64_t(pairs.size()));
  }
  // Snapshot for the per-batch metrics fold at the end (stats_ is
  // cumulative across batches).
  const BatchStats stats_before = stats_;

  std::vector<uint8_t> needs_search(pairs.size(), 0);
  std::vector<uint8_t> pruned(pairs.size(), 0);
  // Why this pair's chase prefix cannot refute containment (kNone when it
  // can): consumed by the hom phase to settle negatives.
  std::vector<TripReason> chase_trips(pairs.size(), TripReason::kNone);

  // ---- stage 0: signature prefilter --------------------------------------
  //
  // A failed subset test (signature.h) is a sound definite kNotContained:
  // the pair skips both expensive stages entirely. One governor covers the
  // whole stage — each test is a few word ops, so per-pair re-anchoring
  // would cost more than the work it guards. Once the governor trips,
  // pruning STOPS and every remaining pair falls through to the governed
  // chase/hom stages, which degrade it to kUnknown: a tripped stage-0
  // deadline must never manufacture a definite verdict.
  if (copts.use_signature_index && !pairs.empty()) {
    TraceSpan sig_span("engine.signature_stage");
    AnnotateWithRequest(sig_span);
    const SteadyClock::time_point sig_start = SteadyClock::now();
    uint64_t pruned_here = 0;
    ExecGovernor sig_governor = MakeChaseGovernor(budget);
    sig_governor.AddCancellation(engine_token);
    // Dense signature pointers: one pointer chase per query instead of
    // two per pair.
    std::vector<const ClosureSignature*> sigs(num_queries, nullptr);
    for (size_t i = 0; i < num_queries; ++i) {
      if (entries_[i]->signature.has_value()) {
        sigs[i] = &*entries_[i]->signature;
      }
    }
    for (size_t k = 0; k < pairs.size(); ++k) {
      // A subset test is a few word ops; polling the governor every pair
      // would double the stage's cost. A 64-pair stride still bounds the
      // deadline overshoot to a couple of microseconds — and k == 0 is
      // polled, so an already-tripped budget prunes nothing.
      if ((k & 63) == 0 && !sig_governor.CheckNow()) break;
      const ClosureSignature* l = sigs[pairs[k].first];
      const ClosureSignature* r = sigs[pairs[k].second];
      if (l == nullptr || r == nullptr) continue;
      if (MayContain(*l, r->base)) continue;
      pruned[k] = 1;
      out(k).pruned = true;
      ++pruned_here;
    }
    FoldGovernorMetrics(sig_governor);
    stats_.pruned_pairs += pruned_here;
    stats_.signature_us += MsSince(sig_start) * 1000.0;
    if (sig_span.active()) {
      sig_span.Arg("pairs", int64_t(pairs.size()))
          .Arg("pruned", int64_t(pruned_here));
    }
  }

  // ---- cost-ordered schedule ---------------------------------------------
  //
  // With use_cost_scheduling on, both remaining phases iterate the pairs
  // through a permutation sorted by predicted cost ascending
  // (analysis/cost_model.h): cheap verdicts land first, and a runaway
  // pair's budget trip cannot starve them. The estimate never touches a
  // verdict — only the visit order and (below) the hom step budget, which
  // calibration can only raise.
  std::vector<size_t> order(pairs.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<double> pair_cost;
  double mean_cost = 0.0;
  if (copts.use_cost_scheduling && !pairs.empty()) {
    const SteadyClock::time_point cost_start = SteadyClock::now();
    pair_cost.assign(pairs.size(), 0.0);
    uint64_t costed = 0;
    for (size_t k = 0; k < pairs.size(); ++k) {
      if (pruned[k] != 0) continue;  // skipped by both phases: cost 0
      const Entry& l = *entries_[pairs[k].first];
      const Entry& r = *entries_[pairs[k].second];
      if (!l.target_profile.has_value() || !r.pattern_profile.has_value()) {
        continue;
      }
      int level = 0;
      if (copts.depth == ChaseDepth::kPaperBound) {
        level = copts.level_override >= 0
                    ? copts.level_override
                    : PaperLevelBound(l.query, r.query);
      }
      const analysis::CostEstimate estimate = analysis::EstimatePairCost(
          *l.target_profile, *r.pattern_profile, level, copts.max_chase_atoms);
      pair_cost[k] = estimate.Scalar();
      out(k).predicted_cost = pair_cost[k];
      mean_cost += pair_cost[k];
      ++costed;
    }
    if (costed > 0) mean_cost /= double(costed);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return pair_cost[a] < pair_cost[b];
    });
    stats_.cost_us += MsSince(cost_start) * 1000.0;
  }

  // ---- sequential phase: build / deepen the shared targets ---------------
  //
  // Everything that mutates the World (fresh nulls for chase steps) or a
  // cache entry happens here, on the calling thread. The workers below
  // only read. Each pair gets its own governor with a freshly anchored
  // timeout (per-pair isolation): a runaway chase trips its own deadline,
  // and the next pair starts with a full budget again.
  ChaseOptions chase_options;
  chase_options.max_atoms = copts.max_chase_atoms;
  for (size_t ord = 0; ord < pairs.size(); ++ord) {
    const size_t k = order[ord];
    if (pruned[k] != 0) continue;  // discharged in stage 0
    const auto& [lhs, rhs] = pairs[k];
    Entry& l = *entries_[lhs];
    PairVerdict& verdict = out(k);
    ++stats_.chase_requests;
    TraceSpan span("engine.chase_stage");
    AnnotateWithRequest(span);
    if (span.active()) {
      span.Arg("lhs", int64_t(lhs)).Arg("rhs", int64_t(rhs));
    }
    StageTimer timer(&verdict.chase_ms);

    if (copts.depth == ChaseDepth::kNone) {
      verdict.level_bound = -1;
      if (!l.body_index.has_value()) {
        ++stats_.chases_run;
        l.body_index.emplace();
        for (const Atom& atom : l.query.body()) l.body_index->Insert(atom);
      } else {
        ++stats_.chase_cache_hits;
      }
      needs_search[k] = 1;
      continue;
    }

    ExecGovernor chase_governor = MakeChaseGovernor(budget);
    chase_governor.AddCancellation(engine_token);
    if (!chase_governor.CheckNow()) {
      // Already cancelled (or the absolute deadline has passed) before
      // this pair started: skip its chase entirely.
      FoldGovernorMetrics(chase_governor);
      MarkPairUnknown(verdict, chase_governor.trip());
      continue;
    }

    int level = 0;
    if (copts.depth == ChaseDepth::kPaperBound) {
      level = copts.level_override >= 0
                  ? copts.level_override
                  : PaperLevelBound(l.query, entries_[rhs]->query);
    }
    verdict.level_bound = level;

    if (!l.chase.has_value()) {
      ++stats_.chases_run;
      l.chase.emplace(world_, l.query, chase_options);
    } else {
      ++stats_.chase_cache_hits;
    }
    uint64_t deepenings_before = l.chase->deepen_count();
    const ChaseResult& chase = l.chase->EnsureLevel(level, &chase_governor);
    stats_.chase_deepenings += l.chase->deepen_count() - deepenings_before;
    FoldGovernorMetrics(chase_governor);
    if (span.active()) {
      span.Arg("level", int64_t(level))
          .Arg("outcome", ChaseOutcomeName(chase.outcome()));
    }

    if (chase.failed()) {
      // lhs has no answers on any database satisfying Sigma_FL: contained
      // in every query of the same arity, no search needed.
      MarkPairContained(verdict);
      verdict.lhs_unsatisfiable = true;
      continue;
    }
    chase_trips[k] = ChaseTripReason(chase.outcome(), chase_governor);
    if (chase_trips[k] == TripReason::kCancelled) {
      MarkPairUnknown(verdict, TripReason::kCancelled);
      continue;
    }
    // A truncated prefix (atom budget, or this pair's chase deadline) is
    // still worth searching: a homomorphism into it is a sound positive,
    // and the hom stage anchors its own fresh timeout slice.
    needs_search[k] = 1;
  }

  // Freeze every handle: from here on the chase artifacts are immutable
  // and may be shared across threads (asserted by ResumableChase).
  for (const std::unique_ptr<Entry>& entry : entries_) {
    if (entry->chase.has_value()) entry->chase->Freeze();
  }

  // ---- parallel phase: stateless homomorphism searches -------------------
  //
  // Workers read frozen chase results directly (never EnsureLevel — an
  // interrupted frozen handle must not resume here) and run under a
  // per-pair hom governor with its own anchored timeout.
  const SteadyClock::time_point fanout_start = SteadyClock::now();
  auto run_pair_inner = [&](size_t k) {
    PairVerdict& verdict = out(k);
    // Budget calibration: an expensive-predicted pair gets a raised hom
    // step budget (never lowered — see ResourceBudget::FromEstimate), so
    // step-budget kUnknowns can only decrease relative to the flat knob.
    ResourceBudget pair_budget = budget;
    if (copts.use_cost_scheduling && budget.hom_step_budget > 0 &&
        k < pair_cost.size() && pair_cost[k] > 0.0) {
      // Runs on worker threads: stats_ is not touched here (the
      // calibrated-pair count is folded in the post-join accounting loop).
      pair_budget = ResourceBudget::FromEstimate(budget, pair_cost[k],
                                                 mean_cost);
    }
    ExecGovernor hom_governor = MakeHomGovernor(pair_budget);
    hom_governor.AddCancellation(engine_token);
    if (!hom_governor.CheckNow()) {
      FoldGovernorMetrics(hom_governor);
      MarkPairUnknown(verdict,
                      hom_governor.trip() == TripReason::kCancelled
                          ? TripReason::kCancelled
                          : chase_trips[k] != TripReason::kNone
                                ? chase_trips[k]
                                : hom_governor.trip());
      return;
    }
    const auto& [lhs, rhs] = pairs[k];
    const Entry& l = *entries_[lhs];
    const Entry& r = *entries_[rhs];
    const FactIndex& target = copts.depth == ChaseDepth::kNone
                                  ? *l.body_index
                                  : l.chase->result().conjuncts();
    const std::vector<Term>& target_head = copts.depth == ChaseDepth::kNone
                                               ? l.query.head()
                                               : l.chase->result().head();
    MatchOptions match = copts.match;
    match.governor = &hom_governor;
    bool found = FindQueryHomomorphism(r.renamed, target, target_head,
                                       &verdict.hom_stats, match)
                     .has_value();
    FoldGovernorMetrics(hom_governor);
    if (found) {
      // Sound even into a truncated prefix (see governor.h).
      MarkPairContained(verdict);
      return;
    }
    if (chase_trips[k] != TripReason::kNone) {
      MarkPairUnknown(verdict, chase_trips[k]);
    } else if (hom_governor.tripped()) {
      MarkPairUnknown(verdict, hom_governor.trip());
    } else {
      verdict.contained = false;
      verdict.resolution = Resolution::kNotContained;
    }
  };
  auto run_pair = [&](size_t k) {
    if (needs_search[k] == 0) return;
    PairVerdict& verdict = out(k);
    verdict.queue_wait_ms = MsSince(fanout_start);
    TraceSpan span("engine.hom_stage");
    AnnotateWithRequest(span);
    {
      StageTimer timer(&verdict.hom_ms);
      run_pair_inner(k);
    }
    if (span.active()) {
      const auto& [lhs, rhs] = pairs[k];
      span.Arg("lhs", int64_t(lhs))
          .Arg("rhs", int64_t(rhs))
          .Arg("resolution", ResolutionName(verdict.resolution));
      if (verdict.resolution == Resolution::kUnknown) {
        span.Arg("trip", TripReasonName(verdict.unknown_reason));
      }
    }
  };

  size_t jobs = options_.jobs == 0 ? ThreadPool::DefaultThreads()
                                   : size_t(options_.jobs);
  jobs = std::min(jobs, pairs.size());
  // ParallelFor submits indices FIFO, so dispatching through `order` makes
  // workers pick the cheapest-predicted pairs up first.
  auto run_ordered = [&](size_t ord) { run_pair(order[ord]); };
  if (jobs <= 1) {
    for (size_t ord = 0; ord < pairs.size(); ++ord) run_ordered(ord);
  } else {
    ThreadPool pool(jobs);
    ParallelFor(pool, pairs.size(), run_ordered);
  }

  // The fan-out has joined; a later CheckPairs call on this engine may
  // legally deepen the handles again.
  for (const std::unique_ptr<Entry>& entry : entries_) {
    if (entry->chase.has_value()) entry->chase->Thaw();
  }

  stats_.pairs_checked += pairs.size();
  const bool metrics = MetricsRegistry::enabled();
  for (size_t k = 0; k < pairs.size(); ++k) {
    // Pruned pairs ran neither stage: nothing to record, and folding
    // their zero times in would deflate every mean — skip on the dense
    // flag so the pruned fast path never touches the verdict memory.
    if (pruned[k] != 0) continue;
    const PairVerdict& verdict = out(k);
    if (verdict.resolution == Resolution::kUnknown) {
      // Degraded pairs: their search was cut off mid-flight, so their
      // effort and stage times stay out of the throughput aggregates
      // (hom / chase_stage / hom_stage / queue_wait) and land in their
      // own bucket instead.
      stats_.hom_degraded.Accumulate(verdict.hom_stats);
      ++stats_.unknown_pairs;
      if (verdict.unknown_reason == TripReason::kDeadlineExceeded) {
        ++stats_.timed_out_pairs;
      } else if (verdict.unknown_reason == TripReason::kCancelled) {
        ++stats_.cancelled_pairs;
      }
      continue;
    }
    stats_.hom.Accumulate(verdict.hom_stats);
    if (copts.use_cost_scheduling && budget.hom_step_budget > 0 &&
        needs_search[k] != 0 && k < pair_cost.size() &&
        pair_cost[k] > mean_cost && mean_cost > 0.0) {
      // Mirrors the FromEstimate condition in run_pair_inner (ratio > 1),
      // counted here because workers must not touch stats_.
      ++stats_.budget_calibrated_pairs;
    }
    if (copts.depth != ChaseDepth::kNone) {
      stats_.chase_stage.Record(verdict.chase_ms);
    }
    if (needs_search[k] != 0) {
      stats_.hom_stage.Record(verdict.hom_ms);
      stats_.queue_wait.Record(verdict.queue_wait_ms);
    }
    if (metrics) {
      MetricsRegistry& registry = MetricsRegistry::Get();
      static Histogram& chase_us = registry.histogram("engine.chase_stage_us");
      static Histogram& hom_us = registry.histogram("engine.hom_stage_us");
      static Histogram& wait_us = registry.histogram("engine.queue_wait_us");
      if (copts.depth != ChaseDepth::kNone) {
        chase_us.Record(uint64_t(verdict.chase_ms * 1000.0));
      }
      if (needs_search[k] != 0) {
        hom_us.Record(uint64_t(verdict.hom_ms * 1000.0));
        wait_us.Record(uint64_t(verdict.queue_wait_ms * 1000.0));
      }
    }
  }
  if (metrics) {
    MetricsRegistry& registry = MetricsRegistry::Get();
    static Counter& pairs_checked = registry.counter("engine.pairs_checked");
    static Counter& pruned_pairs = registry.counter("engine.pruned_pairs");
    static Counter& unknown = registry.counter("engine.unknown_pairs");
    static Counter& requests = registry.counter("engine.chase_requests");
    static Counter& cache_hits = registry.counter("engine.chase_cache_hits");
    static Counter& chases = registry.counter("engine.chases_run");
    static Counter& deepenings = registry.counter("engine.chase_deepenings");
    auto fold = [](Counter& c, uint64_t before, uint64_t after) {
      if (after > before) c.Add(after - before);
    };
    fold(pairs_checked, stats_before.pairs_checked, stats_.pairs_checked);
    fold(pruned_pairs, stats_before.pruned_pairs, stats_.pruned_pairs);
    fold(unknown, stats_before.unknown_pairs, stats_.unknown_pairs);
    if (copts.use_signature_index && !pairs.empty()) {
      static Histogram& sig_us =
          registry.histogram("engine.signature_stage_us");
      sig_us.Record(
          uint64_t(stats_.signature_us - stats_before.signature_us));
    }
    fold(requests, stats_before.chase_requests, stats_.chase_requests);
    fold(cache_hits, stats_before.chase_cache_hits, stats_.chase_cache_hits);
    fold(chases, stats_before.chases_run, stats_.chases_run);
    fold(deepenings, stats_before.chase_deepenings, stats_.chase_deepenings);
  }
  return Status::Ok();
}

Result<std::vector<PairVerdict>> ContainmentEngine::CheckPairs(
    std::span<const std::pair<size_t, size_t>> pairs) {
  std::vector<PairVerdict> verdicts(pairs.size());
  FLOQ_RETURN_IF_ERROR(CheckPairsCore(
      pairs, [&](size_t k) -> PairVerdict& { return verdicts[k]; }));
  return verdicts;
}

Result<std::vector<std::vector<PairVerdict>>> ContainmentEngine::CheckAll() {
  const size_t n = entries_.size();
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(n * (n - 1));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) pairs.emplace_back(i, j);
    }
  }
  // Verdicts land directly in their matrix cells (the diagonal stays
  // defaulted): no flat intermediate vector, no n^2 copy.
  std::vector<std::vector<PairVerdict>> matrix(n,
                                               std::vector<PairVerdict>(n));
  FLOQ_RETURN_IF_ERROR(CheckPairsCore(pairs, [&](size_t k) -> PairVerdict& {
    const auto& [i, j] = pairs[k];
    return matrix[i][j];
  }));
  return matrix;
}

}  // namespace floq
