#include "containment/containment.h"

#include "util/strings.h"

namespace floq {

namespace {

Status ValidatePair(const World& world, const ConjunctiveQuery& q1,
                    const ConjunctiveQuery& q2) {
  FLOQ_RETURN_IF_ERROR(q1.Validate(world));
  FLOQ_RETURN_IF_ERROR(q2.Validate(world));
  if (q1.arity() != q2.arity()) {
    return InvalidArgumentError(
        StrCat("containment requires equal arities; got ", q1.arity(),
               " and ", q2.arity()));
  }
  return Status::Ok();
}

}  // namespace

int PaperLevelBound(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return q2.size() * 2 * q1.size();
}

Result<ContainmentResult> CheckContainment(World& world,
                                           const ConjunctiveQuery& q1,
                                           const ConjunctiveQuery& q2,
                                           const ContainmentOptions& options) {
  if (options.depth == ChaseDepth::kNone) {
    return CheckClassicalContainment(world, q1, q2);
  }
  FLOQ_RETURN_IF_ERROR(ValidatePair(world, q1, q2));

  int level_bound = 0;
  if (options.depth == ChaseDepth::kPaperBound) {
    level_bound = options.level_override >= 0 ? options.level_override
                                              : PaperLevelBound(q1, q2);
  }

  ChaseOptions chase_options;
  chase_options.max_level = level_bound;
  chase_options.max_atoms = options.max_chase_atoms;
  ContainmentResult result;
  result.level_bound = level_bound;
  result.chase = ChaseQuery(world, q1, chase_options);

  if (result.chase.failed()) {
    // q1 has no answers on any database satisfying Sigma_FL, so it is
    // contained in every query of the same arity.
    result.contained = true;
    result.q1_unsatisfiable = true;
    return result;
  }
  if (result.chase.outcome() == ChaseOutcome::kBudgetExceeded) {
    return ResourceExhaustedError(
        StrCat("chase of q1 exceeded max_chase_atoms=",
               options.max_chase_atoms, " before level ", level_bound));
  }

  // q2's variables must be disjoint from the values of chase(q1) (which
  // include q1's variables): rename apart, search, then express the
  // witness in terms of q2's original variables.
  Substitution renaming;
  ConjunctiveQuery q2_fresh = q2.RenameApart(world, &renaming);
  std::optional<Substitution> hom =
      FindQueryHomomorphism(q2_fresh, result.chase.conjuncts(),
                            result.chase.head(), &result.hom_stats,
                            options.match);
  if (hom.has_value()) {
    result.witness = renaming.ComposeWith(*hom);
  }
  result.contained = result.witness.has_value();
  return result;
}

Result<ContainmentResult> CheckClassicalContainment(
    World& world, const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  FLOQ_RETURN_IF_ERROR(ValidatePair(world, q1, q2));

  // The target is body(q1) itself, with q1's variables as values.
  FactIndex target;
  for (const Atom& atom : q1.body()) target.Insert(atom);

  ContainmentResult result;
  result.level_bound = -1;
  Substitution renaming;
  ConjunctiveQuery q2_fresh = q2.RenameApart(world, &renaming);
  std::optional<Substitution> hom =
      FindQueryHomomorphism(q2_fresh, target, q1.head(), &result.hom_stats);
  if (hom.has_value()) {
    result.witness = renaming.ComposeWith(*hom);
  }
  result.contained = result.witness.has_value();
  return result;
}

Result<bool> CheckEquivalence(World& world, const ConjunctiveQuery& q1,
                              const ConjunctiveQuery& q2,
                              const ContainmentOptions& options) {
  Result<ContainmentResult> forward = CheckContainment(world, q1, q2, options);
  if (!forward.ok()) return forward.status();
  if (!forward->contained) return false;
  Result<ContainmentResult> backward = CheckContainment(world, q2, q1, options);
  if (!backward.ok()) return backward.status();
  return backward->contained;
}

Result<std::optional<size_t>> CheckUcqContainment(
    World& world, const ConjunctiveQuery& q,
    std::span<const ConjunctiveQuery> disjuncts,
    const ContainmentOptions& options) {
  FLOQ_RETURN_IF_ERROR(q.Validate(world));

  // One chase serves all disjuncts; its depth must cover the largest
  // per-disjunct bound.
  int level_bound = 0;
  for (const ConjunctiveQuery& disjunct : disjuncts) {
    FLOQ_RETURN_IF_ERROR(disjunct.Validate(world));
    if (disjunct.arity() != q.arity()) {
      return InvalidArgumentError("UCQ disjunct arity mismatch");
    }
    level_bound = std::max(level_bound, disjunct.size() * 2 * q.size());
  }
  if (options.level_override >= 0) level_bound = options.level_override;
  if (options.depth == ChaseDepth::kLevelZero) level_bound = 0;

  ChaseOptions chase_options;
  chase_options.max_level = level_bound;
  chase_options.max_atoms = options.max_chase_atoms;
  ChaseResult chase = ChaseQuery(world, q, chase_options);

  if (chase.failed()) {
    // Unsatisfiable q is contained in any nonempty union.
    if (disjuncts.empty()) return std::optional<size_t>();
    return std::optional<size_t>(0);
  }
  if (chase.outcome() == ChaseOutcome::kBudgetExceeded) {
    return ResourceExhaustedError("chase exceeded max_chase_atoms");
  }

  for (size_t i = 0; i < disjuncts.size(); ++i) {
    ConjunctiveQuery fresh = disjuncts[i].RenameApart(world);
    if (FindQueryHomomorphism(fresh, chase.conjuncts(), chase.head(),
                              /*stats=*/nullptr, options.match)
            .has_value()) {
      return std::optional<size_t>(i);
    }
  }
  return std::optional<size_t>();
}

Result<ContainmentResult> CheckContainmentUnderDependencies(
    World& world, const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
    const DependencySet& dependencies, const ContainmentOptions& options) {
  FLOQ_RETURN_IF_ERROR(ValidatePair(world, q1, q2));

  const bool weakly_acyclic = IsWeaklyAcyclic(dependencies, world);
  ChaseOptions chase_options;
  chase_options.max_atoms = options.max_chase_atoms;
  int level_bound = -1;
  if (weakly_acyclic) {
    // The chase terminates; no level cap needed.
  } else if (options.level_override >= 0) {
    level_bound = options.level_override;
    chase_options.max_level = level_bound;
  } else {
    return FailedPreconditionError(
        "dependency set is not weakly acyclic: the chase may not "
        "terminate; set ContainmentOptions::level_override for a sound "
        "(but possibly inconclusive) bounded check");
  }

  ContainmentResult result;
  result.level_bound = level_bound;
  result.chase = GenericChase(world, q1, dependencies, chase_options);

  if (result.chase.failed()) {
    result.contained = true;
    result.q1_unsatisfiable = true;
    return result;
  }
  if (result.chase.outcome() == ChaseOutcome::kBudgetExceeded) {
    return ResourceExhaustedError(
        StrCat("generic chase of q1 exceeded max_chase_atoms=",
               options.max_chase_atoms));
  }

  Substitution renaming;
  ConjunctiveQuery q2_fresh = q2.RenameApart(world, &renaming);
  std::optional<Substitution> hom =
      FindQueryHomomorphism(q2_fresh, result.chase.conjuncts(),
                            result.chase.head(), &result.hom_stats,
                            options.match);
  if (hom.has_value()) {
    result.witness = renaming.ComposeWith(*hom);
  }
  result.contained = result.witness.has_value();
  // On a truncated chase of a non-weakly-acyclic set, "no homomorphism"
  // does not refute containment.
  result.conclusive =
      result.contained || weakly_acyclic ||
      result.chase.outcome() == ChaseOutcome::kCompleted;
  return result;
}

Result<std::optional<size_t>> CheckUnionContainment(
    World& world, std::span<const ConjunctiveQuery> lhs,
    std::span<const ConjunctiveQuery> rhs,
    const ContainmentOptions& options) {
  for (size_t i = 0; i < lhs.size(); ++i) {
    Result<std::optional<size_t>> hit =
        CheckUcqContainment(world, lhs[i], rhs, options);
    if (!hit.ok()) return hit.status();
    if (!hit->has_value()) return std::optional<size_t>(i);
  }
  return std::optional<size_t>();
}

}  // namespace floq
