#include "containment/containment.h"

#include <chrono>

#include "util/request_context.h"
#include "util/strings.h"
#include "util/trace.h"

namespace floq {

namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
      .count();
}

Status ValidatePair(const World& world, const ConjunctiveQuery& q1,
                    const ConjunctiveQuery& q2) {
  FLOQ_RETURN_IF_ERROR(q1.Validate(world));
  FLOQ_RETURN_IF_ERROR(q2.Validate(world));
  if (q1.arity() != q2.arity()) {
    return InvalidArgumentError(
        StrCat("containment requires equal arities; got ", q1.arity(),
               " and ", q2.arity()));
  }
  return Status::Ok();
}

void MarkContained(ContainmentResult& result) {
  result.contained = true;
  result.resolution = Resolution::kContained;
  result.unknown_reason = TripReason::kNone;
}

void MarkUnknown(ContainmentResult& result, TripReason reason) {
  result.contained = false;
  result.resolution = Resolution::kUnknown;
  result.unknown_reason = reason;
  result.conclusive = false;
}

/// Settles a negative hom-search outcome into NOT_CONTAINED or UNKNOWN.
/// chase_trip is the reason the chase was truncated (kNone when the
/// materialization is complete up to the Theorem-12 bound); hom_governor
/// is the governor the search ran under, or nullptr when ungoverned.
void ResolveNegative(ContainmentResult& result, TripReason chase_trip,
                     const ExecGovernor* hom_governor) {
  if (chase_trip != TripReason::kNone) {
    MarkUnknown(result, chase_trip);
    return;
  }
  if (hom_governor != nullptr && hom_governor->tripped()) {
    MarkUnknown(result, hom_governor->trip());
    return;
  }
  result.contained = false;
  result.resolution = Resolution::kNotContained;
}

}  // namespace

int PaperLevelBound(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return q2.size() * 2 * q1.size();
}

Result<ContainmentResult> CheckContainment(World& world,
                                           const ConjunctiveQuery& q1,
                                           const ConjunctiveQuery& q2,
                                           const ContainmentOptions& options) {
  if (options.depth == ChaseDepth::kNone) {
    return CheckClassicalContainment(world, q1, q2, options);
  }
  FLOQ_RETURN_IF_ERROR(ValidatePair(world, q1, q2));

  int level_bound = 0;
  if (options.depth == ChaseDepth::kPaperBound) {
    level_bound = options.level_override >= 0 ? options.level_override
                                              : PaperLevelBound(q1, q2);
  }

  // Both stages share one anchored deadline: the budget's timeout is for
  // the whole check, not per stage. (The batch engine re-anchors per pair
  // and per stage instead; see engine.cc.)
  const bool governed = !options.budget.unlimited();
  Deadline anchored = AnchorDeadline(options.budget);
  ExecGovernor chase_governor(anchored, options.budget.cancel);

  ChaseOptions chase_options;
  chase_options.max_level = level_bound;
  chase_options.max_atoms = options.max_chase_atoms;
  chase_options.record_cross_arcs = options.record_cross_arcs;
  if (governed) chase_options.governor = &chase_governor;
  ContainmentResult result;
  result.level_bound = level_bound;
  TraceSpan span("check.containment");
  AnnotateWithRequest(span);
  const SteadyClock::time_point chase_start = SteadyClock::now();
  result.chase = ChaseQuery(world, q1, chase_options);
  result.chase_ms = MsSince(chase_start);
  FoldGovernorMetrics(chase_governor);

  auto annotate = [&]() {
    if (span.active()) {
      span.Arg("resolution", ResolutionName(result.resolution))
          .Arg("level_bound", int64_t(result.level_bound))
          .Arg("chase_conjuncts", int64_t(result.chase.size()));
    }
  };

  if (result.chase.failed()) {
    // q1 has no answers on any database satisfying Sigma_FL, so it is
    // contained in every query of the same arity.
    MarkContained(result);
    result.q1_unsatisfiable = true;
    annotate();
    return result;
  }

  TripReason chase_trip = ChaseTripReason(result.chase.outcome(),
                                          chase_governor);
  if (chase_trip == TripReason::kDeadlineExceeded ||
      chase_trip == TripReason::kCancelled) {
    // Out of time (or told to stop): do not start the hom search against
    // the prefix — a positive would be sound, but the caller's clock has
    // already run out.
    MarkUnknown(result, chase_trip);
    annotate();
    return result;
  }

  // chase_trip is kNone or kChaseAtomBudget here. Search even a truncated
  // prefix: a homomorphism into any prefix composes into the universal
  // model, so kContained remains sound (governor.h).
  //
  // The chase is done mutating: compact its posting lists into the
  // block-compressed frozen tier so the search leapfrogs compressed
  // blocks instead of plain vectors.
  result.chase.FreezeConjuncts();
  ExecGovernor hom_governor(anchored, options.budget.cancel,
                            options.budget.hom_step_budget);
  MatchOptions match = options.match;
  if (governed && match.governor == nullptr) match.governor = &hom_governor;

  // q2's variables must be disjoint from the values of chase(q1) (which
  // include q1's variables): rename apart, search, then express the
  // witness in terms of q2's original variables.
  Substitution renaming;
  ConjunctiveQuery q2_fresh = q2.RenameApart(world, &renaming);
  const SteadyClock::time_point hom_start = SteadyClock::now();
  std::optional<Substitution> hom =
      FindQueryHomomorphism(q2_fresh, result.chase.conjuncts(),
                            result.chase.head(), &result.hom_stats, match);
  result.hom_ms = MsSince(hom_start);
  // Only the stage-local governor is folded: a caller-supplied shared
  // governor accumulates steps across calls and would double-count.
  if (match.governor == &hom_governor) FoldGovernorMetrics(hom_governor);
  if (hom.has_value()) {
    result.witness = renaming.ComposeWith(*hom);
    MarkContained(result);
    annotate();
    return result;
  }
  ResolveNegative(result, chase_trip, match.governor);
  annotate();
  return result;
}

Result<ContainmentResult> CheckClassicalContainment(
    World& world, const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
    const ContainmentOptions& options) {
  FLOQ_RETURN_IF_ERROR(ValidatePair(world, q1, q2));

  // The target is body(q1) itself, with q1's variables as values.
  FactIndex target;
  for (const Atom& atom : q1.body()) target.Insert(atom);

  const bool governed = !options.budget.unlimited();
  ExecGovernor hom_governor = MakeHomGovernor(options.budget);
  MatchOptions match = options.match;
  if (governed && match.governor == nullptr) match.governor = &hom_governor;

  ContainmentResult result;
  result.level_bound = -1;
  TraceSpan span("check.classical");
  AnnotateWithRequest(span);
  Substitution renaming;
  ConjunctiveQuery q2_fresh = q2.RenameApart(world, &renaming);
  const SteadyClock::time_point hom_start = SteadyClock::now();
  std::optional<Substitution> hom =
      FindQueryHomomorphism(q2_fresh, target, q1.head(), &result.hom_stats,
                            match);
  result.hom_ms = MsSince(hom_start);
  if (match.governor == &hom_governor) FoldGovernorMetrics(hom_governor);
  if (hom.has_value()) {
    result.witness = renaming.ComposeWith(*hom);
    MarkContained(result);
    return result;
  }
  ResolveNegative(result, TripReason::kNone, match.governor);
  return result;
}

Result<bool> CheckEquivalence(World& world, const ConjunctiveQuery& q1,
                              const ConjunctiveQuery& q2,
                              const ContainmentOptions& options) {
  Result<ContainmentResult> forward = CheckContainment(world, q1, q2, options);
  if (!forward.ok()) return forward.status();
  if (!forward->contained) return false;
  Result<ContainmentResult> backward = CheckContainment(world, q2, q1, options);
  if (!backward.ok()) return backward.status();
  return backward->contained;
}

Result<std::optional<size_t>> CheckUcqContainment(
    World& world, const ConjunctiveQuery& q,
    std::span<const ConjunctiveQuery> disjuncts,
    const ContainmentOptions& options) {
  FLOQ_RETURN_IF_ERROR(q.Validate(world));

  // One chase serves all disjuncts; its depth must cover the largest
  // per-disjunct bound.
  int level_bound = 0;
  for (const ConjunctiveQuery& disjunct : disjuncts) {
    FLOQ_RETURN_IF_ERROR(disjunct.Validate(world));
    if (disjunct.arity() != q.arity()) {
      return InvalidArgumentError("UCQ disjunct arity mismatch");
    }
    level_bound = std::max(level_bound, disjunct.size() * 2 * q.size());
  }
  if (options.level_override >= 0) level_bound = options.level_override;
  if (options.depth == ChaseDepth::kLevelZero) level_bound = 0;

  // The UCQ API has no kUnknown channel (it returns a disjunct index), so
  // trips surface as typed errors here.
  const bool governed = !options.budget.unlimited();
  Deadline anchored = AnchorDeadline(options.budget);
  ExecGovernor chase_governor(anchored, options.budget.cancel);

  ChaseOptions chase_options;
  chase_options.max_level = level_bound;
  chase_options.max_atoms = options.max_chase_atoms;
  if (governed) chase_options.governor = &chase_governor;
  ChaseResult chase = ChaseQuery(world, q, chase_options);

  if (chase.failed()) {
    // Unsatisfiable q is contained in any nonempty union.
    if (disjuncts.empty()) return std::optional<size_t>();
    return std::optional<size_t>(0);
  }
  if (chase.outcome() == ChaseOutcome::kBudgetExceeded) {
    return ResourceExhaustedError("chase exceeded max_chase_atoms");
  }
  if (chase.outcome() == ChaseOutcome::kInterrupted) {
    return chase_governor.trip() == TripReason::kCancelled
               ? CancelledError("UCQ containment cancelled during chase")
               : DeadlineExceededError(
                     "UCQ containment deadline exceeded during chase");
  }

  // All disjunct searches draw on one governor: the hom budget spans the
  // whole stage, not each disjunct.
  chase.FreezeConjuncts();
  ExecGovernor hom_governor(anchored, options.budget.cancel,
                            options.budget.hom_step_budget);
  MatchOptions match = options.match;
  if (governed && match.governor == nullptr) match.governor = &hom_governor;

  for (size_t i = 0; i < disjuncts.size(); ++i) {
    ConjunctiveQuery fresh = disjuncts[i].RenameApart(world);
    if (FindQueryHomomorphism(fresh, chase.conjuncts(), chase.head(),
                              /*stats=*/nullptr, match)
            .has_value()) {
      return std::optional<size_t>(i);
    }
  }
  if (match.governor != nullptr && match.governor->tripped()) {
    switch (match.governor->trip()) {
      case TripReason::kCancelled:
        return CancelledError("UCQ containment cancelled during hom search");
      case TripReason::kHomStepBudget:
        return ResourceExhaustedError(
            "UCQ containment exhausted the hom step budget");
      default:
        return DeadlineExceededError(
            "UCQ containment deadline exceeded during hom search");
    }
  }
  return std::optional<size_t>();
}

Result<ContainmentResult> CheckContainmentUnderDependencies(
    World& world, const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
    const DependencySet& dependencies, const ContainmentOptions& options) {
  FLOQ_RETURN_IF_ERROR(ValidatePair(world, q1, q2));

  const bool weakly_acyclic = IsWeaklyAcyclic(dependencies, world);
  ChaseOptions chase_options;
  chase_options.max_atoms = options.max_chase_atoms;
  int level_bound = -1;
  if (weakly_acyclic) {
    // The chase terminates; no level cap needed.
  } else if (options.level_override >= 0) {
    level_bound = options.level_override;
    chase_options.max_level = level_bound;
  } else {
    return FailedPreconditionError(
        "dependency set is not weakly acyclic: the chase may not "
        "terminate; set ContainmentOptions::level_override for a sound "
        "(but possibly inconclusive) bounded check");
  }

  const bool governed = !options.budget.unlimited();
  Deadline anchored = AnchorDeadline(options.budget);
  ExecGovernor chase_governor(anchored, options.budget.cancel);
  if (governed) chase_options.governor = &chase_governor;

  ContainmentResult result;
  result.level_bound = level_bound;
  TraceSpan span("check.under_dependencies");
  AnnotateWithRequest(span);
  const SteadyClock::time_point chase_start = SteadyClock::now();
  result.chase = GenericChase(world, q1, dependencies, chase_options);
  result.chase_ms = MsSince(chase_start);
  FoldGovernorMetrics(chase_governor);

  if (result.chase.failed()) {
    MarkContained(result);
    result.q1_unsatisfiable = true;
    return result;
  }

  TripReason chase_trip = ChaseTripReason(result.chase.outcome(),
                                          chase_governor);
  if (chase_trip == TripReason::kDeadlineExceeded ||
      chase_trip == TripReason::kCancelled) {
    MarkUnknown(result, chase_trip);
    return result;
  }

  result.chase.FreezeConjuncts();
  ExecGovernor hom_governor(anchored, options.budget.cancel,
                            options.budget.hom_step_budget);
  MatchOptions match = options.match;
  if (governed && match.governor == nullptr) match.governor = &hom_governor;

  Substitution renaming;
  ConjunctiveQuery q2_fresh = q2.RenameApart(world, &renaming);
  const SteadyClock::time_point hom_start = SteadyClock::now();
  std::optional<Substitution> hom =
      FindQueryHomomorphism(q2_fresh, result.chase.conjuncts(),
                            result.chase.head(), &result.hom_stats, match);
  result.hom_ms = MsSince(hom_start);
  if (match.governor == &hom_governor) FoldGovernorMetrics(hom_governor);
  if (hom.has_value()) {
    result.witness = renaming.ComposeWith(*hom);
    MarkContained(result);
    return result;
  }
  ResolveNegative(result, chase_trip, match.governor);
  // On a truncated chase of a non-weakly-acyclic set, "no homomorphism"
  // does not refute containment even when no resource budget tripped.
  if (result.resolution == Resolution::kNotContained) {
    result.conclusive =
        weakly_acyclic ||
        result.chase.outcome() == ChaseOutcome::kCompleted;
  }
  return result;
}

Result<std::optional<size_t>> CheckUnionContainment(
    World& world, std::span<const ConjunctiveQuery> lhs,
    std::span<const ConjunctiveQuery> rhs,
    const ContainmentOptions& options) {
  for (size_t i = 0; i < lhs.size(); ++i) {
    Result<std::optional<size_t>> hit =
        CheckUcqContainment(world, lhs[i], rhs, options);
    if (!hit.ok()) return hit.status();
    if (!hit->has_value()) return std::optional<size_t>(i);
  }
  return std::optional<size_t>();
}

}  // namespace floq
