#ifndef FLOQ_CONTAINMENT_SIGNATURE_H_
#define FLOQ_CONTAINMENT_SIGNATURE_H_

#include <cstdint>
#include <vector>

#include "chase/chase.h"
#include "query/conjunctive_query.h"
#include "term/predicate.h"

// Per-query containment signatures — cheap necessary conditions that
// discharge the overwhelming majority of an N^2 pair matrix before any
// chase or homomorphism work (the filter-before-expensive-check
// discipline; see DESIGN.md §13).
//
// The invariant every discharge rests on:
//
//   signature(q2) ⊄ closure-signature(q1)  ⇒  q1 ⊈_Sigma q2
//
// Concretely, for the ordered pair "lhs ⊆_Sigma rhs" the engine decides
// via a homomorphism body(rhs) -> chase_Sigma(lhs) (Theorem 4). A
// homomorphism maps every rhs body atom onto a chase conjunct with the
// SAME predicate, and fixes constants. Therefore:
//
//   preds(rhs)     ⊆ preds(chase(lhs))      and
//   constants(rhs) ⊆ constants(chase(lhs))
//
// are necessary for containment, and their failure is a sound definite
// kNotContained — *provided* chase(lhs) did not fail (a failed chase makes
// lhs unsatisfiable and hence vacuously contained in everything) and the
// closure sets really over-approximate the full chase (see
// ClosureSignature::prunable for the two guards).

namespace floq {

enum class ChaseDepth;  // containment/containment.h

/// Dynamic bitset over interned predicate ids. Queries registered later
/// may intern predicates the earlier ones never saw, so subset tests must
/// tolerate operands of different widths (missing words read as zero).
class PredicateBits {
 public:
  void Set(PredicateId id) {
    const size_t word = id / 64;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    words_[word] |= uint64_t(1) << (id % 64);
  }

  bool Test(PredicateId id) const {
    const size_t word = id / 64;
    return word < words_.size() &&
           ((words_[word] >> (id % 64)) & uint64_t(1)) != 0;
  }

  bool IsSubsetOf(const PredicateBits& other) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      const uint64_t theirs = w < other.words_.size() ? other.words_[w] : 0;
      if ((words_[w] & ~theirs) != 0) return false;
    }
    return true;
  }

  void UnionWith(const PredicateBits& other) {
    if (other.words_.size() > words_.size()) {
      words_.resize(other.words_.size(), 0);
    }
    for (size_t w = 0; w < other.words_.size(); ++w) {
      words_[w] |= other.words_[w];
    }
  }

  int Count() const;
  bool Any() const;

  friend bool operator==(const PredicateBits& a, const PredicateBits& b) {
    return a.IsSubsetOf(b) && b.IsSubsetOf(a);
  }

 private:
  std::vector<uint64_t> words_;
};

/// The chase-free part of a query's signature: computed from the syntax
/// alone in one pass over head and body.
struct QuerySignature {
  /// Predicates occurring in the body.
  PredicateBits predicates;
  /// Distinct constants of body *and* head, by Term::raw(), sorted
  /// ascending. Head constants matter: safety only forces head variables
  /// into the body, so `q(c) :- member(X, D)` carries a head constant the
  /// body never mentions, and a homomorphism must still preserve it.
  std::vector<uint32_t> constants;
  /// Multiplicity of each distinct constant (parallel to `constants`) —
  /// the constant-*multiset* fingerprint. Multiplicities are lattice
  /// metadata for ordering/reporting; only the distinct set is a sound
  /// discharge condition (a homomorphism may collapse occurrences).
  std::vector<uint32_t> constant_counts;
  /// 64-bit Bloom fingerprint of `constants` (one hashed bit each). If
  /// some bit of rhs.constant_mask is missing from the lhs closure mask,
  /// some rhs constant is definitely absent — two word ops that settle
  /// most non-subset pairs without walking the sorted vectors.
  uint64_t constant_mask = 0;
  /// |q| — body atoms. An upper cardinality bound in the signature
  /// lattice, NOT a discharge condition (homomorphisms collapse atoms).
  uint32_t atoms = 0;
  /// Distinct variables (head + body). Same caveat as `atoms`.
  uint32_t variables = 0;
  /// Head arity.
  int arity = 0;
};

QuerySignature ComputeQuerySignature(const ConjunctiveQuery& query);

/// Sigma_FL closure at the predicate level: the least superset S of
/// `start` closed under "if every body predicate of a rule is in S, add
/// its head predicate". Of the twelve rules only rho_1 ({type, data} |->
/// member) and rho_5 ({mandatory} |-> data) ever add a predicate absent
/// from their own body; the other ten are predicate-preserving, and user
/// predicates are inert (no Sigma_FL rule mentions them). Sound because a
/// chase firing requires every body predicate materialized and only adds
/// its head's predicate. `with_rho5` = false models the Sigma_FL^- chase
/// of ChaseDepth::kLevelZero.
PredicateBits SigmaClosurePredicates(const PredicateBits& start,
                                     bool with_rho5);

/// A query's full registration-time signature: the syntactic part plus an
/// over-approximation of what its chase can ever contain.
struct ClosureSignature {
  QuerySignature base;

  /// Over-approximates preds(chase_Sigma(q)) for the chase depth the
  /// engine will search. Exact (the observed set) when the registration
  /// probe completed; the static SigmaClosurePredicates fixpoint
  /// otherwise.
  PredicateBits closure_predicates;

  /// Over-approximates constants(chase_Sigma(q)): the chase invents only
  /// fresh nulls, never constants, and rho_4 merges keep the
  /// chase-order-earlier term, so no new constant can ever appear —
  /// constants(chase(q)) ⊆ constants(body(q) ∪ head(q)). Sorted distinct
  /// Term::raw() values.
  std::vector<uint32_t> closure_constants;
  /// Bloom fingerprint of closure_constants (see
  /// QuerySignature::constant_mask).
  uint64_t closure_constant_mask = 0;

  /// The probe ran the relevant chase to completion, so the closure sets
  /// are the exact materialized sets rather than static over-estimates.
  bool exact = false;

  /// The probe saw the chase fail (rho_4 equated distinct constants): q
  /// is unsatisfiable and vacuously contained in everything — it must
  /// NEVER be pruned as a left-hand side.
  bool chase_failed = false;

  /// May this signature discharge pairs with q on the left? False when
  /// chase_failed, and false when the probe was inconclusive *and* a
  /// deeper rho_4 failure is still possible (funct present, data
  /// derivable, and >= 2 distinct constants): such a failure would flip
  /// every verdict to vacuous containment, so pruning would be unsound.
  bool prunable = false;
};

/// Builds the closure signature for `query` as the engine will search it.
/// `probe` is the registration-time bounded chase (nullptr in
/// ChaseDepth::kNone mode, where the hom target is body(q) itself and the
/// base signature is already exact).
ClosureSignature ComputeClosureSignature(const ConjunctiveQuery& query,
                                         ChaseDepth depth,
                                         const ChaseResult* probe);

/// The stage-0 test for the ordered pair "lhs ⊆_Sigma rhs". False is a
/// sound, definite kNotContained; true means the pair needs the full
/// chase + homomorphism pipeline.
bool MayContain(const ClosureSignature& lhs, const QuerySignature& rhs);

}  // namespace floq

#endif  // FLOQ_CONTAINMENT_SIGNATURE_H_
