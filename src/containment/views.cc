#include "containment/views.h"

#include "util/strings.h"

namespace floq {

const char* ViewUsabilityName(ViewUsability usability) {
  switch (usability) {
    case ViewUsability::kExact: return "EXACT";
    case ViewUsability::kSound: return "SOUND";
    case ViewUsability::kComplete: return "COMPLETE";
    case ViewUsability::kIrrelevant: return "IRRELEVANT";
  }
  return "?";
}

Result<ViewAnalysis> AnalyzeViews(World& world, const ConjunctiveQuery& query,
                                  const std::vector<ConjunctiveQuery>& views,
                                  const ContainmentOptions& options) {
  FLOQ_RETURN_IF_ERROR(query.Validate(world));
  ViewAnalysis analysis;
  analysis.usability.reserve(views.size());

  for (size_t i = 0; i < views.size(); ++i) {
    const ConjunctiveQuery& view = views[i];
    if (view.arity() != query.arity() || !view.Validate(world).ok()) {
      analysis.usability.push_back(ViewUsability::kIrrelevant);
      continue;
    }

    Result<ContainmentResult> sound =
        CheckContainment(world, view, query, options);
    if (!sound.ok()) return sound.status();
    ++analysis.containment_checks;
    Result<ContainmentResult> complete =
        CheckContainment(world, query, view, options);
    if (!complete.ok()) return complete.status();
    ++analysis.containment_checks;

    ViewUsability usability = ViewUsability::kIrrelevant;
    if (sound->contained && complete->contained) {
      usability = ViewUsability::kExact;
    } else if (sound->contained) {
      usability = ViewUsability::kSound;
    } else if (complete->contained) {
      usability = ViewUsability::kComplete;
    }
    analysis.usability.push_back(usability);

    if (usability == ViewUsability::kExact) {
      if (!analysis.exact_view.has_value()) analysis.exact_view = i;
      analysis.complete_views.push_back(i);
      analysis.sound_views.push_back(i);
    } else if (usability == ViewUsability::kSound) {
      analysis.sound_views.push_back(i);
    } else if (usability == ViewUsability::kComplete) {
      analysis.complete_views.push_back(i);
    }
  }
  return analysis;
}

std::string ViewAnalysisToString(const ViewAnalysis& analysis,
                                 const ConjunctiveQuery& query,
                                 const std::vector<ConjunctiveQuery>& views,
                                 const World& world) {
  std::string out = StrCat("query: ", query.ToString(world), "\n");
  for (size_t i = 0; i < views.size() && i < analysis.usability.size(); ++i) {
    out += StrCat("  [", ViewUsabilityName(analysis.usability[i]), "] ",
                  views[i].ToString(world), "\n");
  }
  if (analysis.exact_view.has_value()) {
    out += StrCat("exact rewriting available: view #", *analysis.exact_view,
                  "\n");
  }
  return out;
}

}  // namespace floq
