#include "containment/views.h"

#include "util/strings.h"

namespace floq {

const char* ViewUsabilityName(ViewUsability usability) {
  switch (usability) {
    case ViewUsability::kExact: return "EXACT";
    case ViewUsability::kSound: return "SOUND";
    case ViewUsability::kComplete: return "COMPLETE";
    case ViewUsability::kIrrelevant: return "IRRELEVANT";
  }
  return "?";
}

Result<ViewAnalysis> AnalyzeViews(World& world, const ConjunctiveQuery& query,
                                  const std::vector<ConjunctiveQuery>& views,
                                  const BatchContainmentOptions& options) {
  FLOQ_RETURN_IF_ERROR(query.Validate(world));
  ViewAnalysis analysis;
  analysis.usability.assign(views.size(), ViewUsability::kIrrelevant);

  // Register the query and every usable view with one engine: the query is
  // chased once (not once per view), each view once, and the 2m
  // homomorphism searches fan out together.
  ContainmentEngine engine(world, options);
  Result<size_t> query_id = engine.AddQuery(query);
  if (!query_id.ok()) return query_id.status();

  std::vector<std::pair<size_t, size_t>> pairs;   // engine-id pairs
  std::vector<size_t> pair_view;                  // pairs[k] -> view index
  for (size_t i = 0; i < views.size(); ++i) {
    const ConjunctiveQuery& view = views[i];
    if (view.arity() != query.arity() || !view.Validate(world).ok()) continue;
    Result<size_t> view_id = engine.AddQuery(view);
    if (!view_id.ok()) return view_id.status();
    pairs.emplace_back(*view_id, *query_id);  // sound:    V ⊆ Q
    pairs.emplace_back(*query_id, *view_id);  // complete: Q ⊆ V
    pair_view.push_back(i);
    pair_view.push_back(i);
  }

  Result<std::vector<PairVerdict>> verdicts = engine.CheckPairs(pairs);
  if (!verdicts.ok()) return verdicts.status();
  analysis.containment_checks = int(engine.stats().pairs_checked);
  analysis.pruned_checks = int(engine.stats().pruned_pairs);

  for (size_t k = 0; k + 1 < verdicts->size(); k += 2) {
    const size_t i = pair_view[k];
    const bool sound = (*verdicts)[k].contained;
    const bool complete = (*verdicts)[k + 1].contained;

    ViewUsability usability = ViewUsability::kIrrelevant;
    if (sound && complete) {
      usability = ViewUsability::kExact;
    } else if (sound) {
      usability = ViewUsability::kSound;
    } else if (complete) {
      usability = ViewUsability::kComplete;
    }
    analysis.usability[i] = usability;

    if (usability == ViewUsability::kExact) {
      if (!analysis.exact_view.has_value()) analysis.exact_view = i;
      analysis.complete_views.push_back(i);
      analysis.sound_views.push_back(i);
    } else if (usability == ViewUsability::kSound) {
      analysis.sound_views.push_back(i);
    } else if (usability == ViewUsability::kComplete) {
      analysis.complete_views.push_back(i);
    }
  }
  return analysis;
}

Result<ViewAnalysis> AnalyzeViews(World& world, const ConjunctiveQuery& query,
                                  const std::vector<ConjunctiveQuery>& views,
                                  const ContainmentOptions& options) {
  BatchContainmentOptions batch;
  batch.containment = options;
  return AnalyzeViews(world, query, views, batch);
}

std::string ViewAnalysisToString(const ViewAnalysis& analysis,
                                 const ConjunctiveQuery& query,
                                 const std::vector<ConjunctiveQuery>& views,
                                 const World& world) {
  std::string out = StrCat("query: ", query.ToString(world), "\n");
  for (size_t i = 0; i < views.size() && i < analysis.usability.size(); ++i) {
    out += StrCat("  [", ViewUsabilityName(analysis.usability[i]), "] ",
                  views[i].ToString(world), "\n");
  }
  if (analysis.exact_view.has_value()) {
    out += StrCat("exact rewriting available: view #", *analysis.exact_view,
                  "\n");
  }
  return out;
}

}  // namespace floq
