#ifndef FLOQ_CONTAINMENT_MINIMIZE_H_
#define FLOQ_CONTAINMENT_MINIMIZE_H_

#include "containment/containment.h"
#include "query/conjunctive_query.h"
#include "term/world.h"
#include "util/status.h"

// Query minimization under Sigma_FL: repeatedly drop body atoms whose
// removal keeps the query equivalent. This is the optimization application
// the paper motivates in the introduction — redundancy that is invisible
// to classical minimization can become removable under the F-logic Lite
// constraints (e.g. member(O, C) is redundant next to member(O, D),
// sub(D, C)).

namespace floq {

struct MinimizeStats {
  int atoms_removed = 0;
  int containment_checks = 0;
};

/// Returns an equivalent (under Sigma_FL) subquery of `query` from which
/// no further atom can be dropped. Head terms are never changed. The
/// result is a minimal *subquery*; like classical cores it is unique up to
/// isomorphism for the subquery ordering explored.
Result<ConjunctiveQuery> MinimizeQuery(World& world,
                                       const ConjunctiveQuery& query,
                                       const ContainmentOptions& options = {},
                                       MinimizeStats* stats = nullptr);

struct CoreStats {
  int atoms_removed = 0;
  int variables_folded = 0;
  int containment_checks = 0;
};

/// A Sigma_FL-core of `query`: alternates atom removal (MinimizeQuery)
/// with variable folding — identifying a non-head variable with another
/// term when the identified query stays equivalent under Sigma_FL. The
/// result has no removable atom and no foldable variable; it is the
/// analogue of the classical core, relative to the constraints.
Result<ConjunctiveQuery> ComputeCore(World& world,
                                     const ConjunctiveQuery& query,
                                     const ContainmentOptions& options = {},
                                     CoreStats* stats = nullptr);

}  // namespace floq

#endif  // FLOQ_CONTAINMENT_MINIMIZE_H_
