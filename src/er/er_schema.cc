#include "er/er_schema.h"

#include <cctype>
#include <map>
#include <set>

#include "util/strings.h"

namespace floq::er {

// ---- validation -------------------------------------------------------------

Status ErSchema::Validate() const {
  std::set<std::string> names;
  std::set<std::string> entity_names;
  for (const Entity& entity : entities) {
    if (!names.insert(entity.name).second) {
      return InvalidArgumentError("duplicate name: " + entity.name);
    }
    entity_names.insert(entity.name);
    std::set<std::string> attribute_names;
    for (const Attribute& attribute : entity.attributes) {
      if (!attribute_names.insert(attribute.name).second) {
        return InvalidArgumentError(StrCat("duplicate attribute ",
                                           attribute.name, " in entity ",
                                           entity.name));
      }
    }
  }
  for (const Relationship& relationship : relationships) {
    if (!names.insert(relationship.name).second) {
      return InvalidArgumentError("duplicate name: " + relationship.name);
    }
    if (relationship.roles.size() < 2) {
      return InvalidArgumentError(StrCat("relationship ", relationship.name,
                                         " needs at least 2 roles"));
    }
    std::set<std::string> role_names;
    for (const Role& role : relationship.roles) {
      if (!role_names.insert(role.name).second) {
        return InvalidArgumentError(StrCat("duplicate role ", role.name,
                                           " in ", relationship.name));
      }
      if (entity_names.count(role.entity) == 0) {
        return InvalidArgumentError(StrCat("role ", role.name, " of ",
                                           relationship.name,
                                           " refers to unknown entity ",
                                           role.entity));
      }
    }
  }

  // ISA targets exist and form no cycle.
  std::map<std::string, std::vector<std::string>> isa;
  for (const Entity& entity : entities) {
    for (const std::string& super : entity.supertypes) {
      if (entity_names.count(super) == 0) {
        return InvalidArgumentError(StrCat("entity ", entity.name,
                                           " isa unknown entity ", super));
      }
      isa[entity.name].push_back(super);
    }
  }
  // DFS cycle check.
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::string> stack;
  for (const Entity& entity : entities) stack.push_back(entity.name);
  // Iterative DFS with explicit coloring.
  std::vector<std::pair<std::string, size_t>> dfs;
  for (const std::string& start : stack) {
    if (state[start] != 0) continue;
    dfs.push_back({start, 0});
    state[start] = 1;
    while (!dfs.empty()) {
      auto& [node, next] = dfs.back();
      const std::vector<std::string>& supers = isa[node];
      if (next < supers.size()) {
        const std::string& super = supers[next++];
        if (state[super] == 1) {
          return InvalidArgumentError("ISA cycle through " + super);
        }
        if (state[super] == 0) {
          state[super] = 1;
          dfs.push_back({super, 0});
        }
      } else {
        state[node] = 2;
        dfs.pop_back();
      }
    }
  }
  return Status::Ok();
}

// ---- compilation --------------------------------------------------------------

namespace {

void CompileAttributes(World& world, Term owner,
                       const std::vector<Attribute>& attributes,
                       std::vector<Atom>& facts) {
  for (const Attribute& attribute : attributes) {
    Term a = world.MakeConstant(attribute.name);
    Term t = world.MakeConstant(attribute.type);
    facts.push_back(Atom::Type(owner, a, t));
    if (attribute.mandatory) facts.push_back(Atom::Mandatory(a, owner));
    if (attribute.functional) facts.push_back(Atom::Funct(a, owner));
  }
}

}  // namespace

std::vector<Atom> ErSchema::ToFacts(World& world) const {
  std::vector<Atom> facts;
  for (const Entity& entity : entities) {
    Term e = world.MakeConstant(entity.name);
    for (const std::string& super : entity.supertypes) {
      facts.push_back(Atom::Sub(e, world.MakeConstant(super)));
    }
    CompileAttributes(world, e, entity.attributes, facts);
  }
  for (const Relationship& relationship : relationships) {
    Term r = world.MakeConstant(relationship.name);
    CompileAttributes(world, r, relationship.attributes, facts);
    for (const Role& role : relationship.roles) {
      Term role_attr = world.MakeConstant(role.name);
      Term entity = world.MakeConstant(role.entity);
      // Each relationship tuple has exactly one filler per role.
      facts.push_back(Atom::Type(r, role_attr, entity));
      facts.push_back(Atom::Mandatory(role_attr, r));
      facts.push_back(Atom::Funct(role_attr, r));
      // Inverse attribute on the participating entity.
      Term inverse =
          world.MakeConstant(InverseAttributeName(relationship, role));
      facts.push_back(Atom::Type(entity, inverse, r));
      if (role.total_participation) {
        facts.push_back(Atom::Mandatory(inverse, entity));
      }
      if (role.unique_participation) {
        facts.push_back(Atom::Funct(inverse, entity));
      }
    }
  }
  return facts;
}

// ---- parser ---------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<ErSchema> Run() {
    ErSchema schema;
    Skip();
    while (!AtEnd()) {
      Result<std::string> keyword = Word("'entity' or 'relationship'");
      if (!keyword.ok()) return keyword.status();
      if (*keyword == "entity") {
        Result<Entity> entity = ParseEntity();
        if (!entity.ok()) return entity.status();
        schema.entities.push_back(std::move(entity).value());
      } else if (*keyword == "relationship") {
        Result<Relationship> relationship = ParseRelationship();
        if (!relationship.ok()) return relationship.status();
        schema.relationships.push_back(std::move(relationship).value());
      } else {
        return Error("expected 'entity' or 'relationship', got '" + *keyword +
                     "'");
      }
      Skip();
    }
    Status valid = schema.Validate();
    if (!valid.ok()) return valid;
    return schema;
  }

 private:
  Result<Entity> ParseEntity() {
    Entity entity;
    Result<std::string> name = Word("entity name");
    if (!name.ok()) return name.status();
    entity.name = *name;
    Skip();
    if (Peek("isa")) {
      (void)Word("isa");
      for (;;) {
        Result<std::string> super = Word("supertype name");
        if (!super.ok()) return super.status();
        entity.supertypes.push_back(*super);
        Skip();
        if (!Consume(',')) break;
      }
    }
    if (!Consume('{')) return Error("expected '{' in entity " + entity.name);
    Skip();
    while (!Consume('}')) {
      Result<std::string> keyword = Word("'attribute'");
      if (!keyword.ok()) return keyword.status();
      if (*keyword != "attribute") {
        return Error("expected 'attribute' in entity " + entity.name);
      }
      Result<Attribute> attribute = ParseAttribute();
      if (!attribute.ok()) return attribute.status();
      entity.attributes.push_back(std::move(attribute).value());
      Skip();
    }
    return entity;
  }

  Result<Relationship> ParseRelationship() {
    Relationship relationship;
    Result<std::string> name = Word("relationship name");
    if (!name.ok()) return name.status();
    relationship.name = *name;
    Skip();
    if (!Consume('{')) {
      return Error("expected '{' in relationship " + relationship.name);
    }
    Skip();
    while (!Consume('}')) {
      Result<std::string> keyword = Word("'role' or 'attribute'");
      if (!keyword.ok()) return keyword.status();
      if (*keyword == "role") {
        Result<Role> role = ParseRole();
        if (!role.ok()) return role.status();
        relationship.roles.push_back(std::move(role).value());
      } else if (*keyword == "attribute") {
        Result<Attribute> attribute = ParseAttribute();
        if (!attribute.ok()) return attribute.status();
        relationship.attributes.push_back(std::move(attribute).value());
      } else {
        return Error("expected 'role' or 'attribute' in relationship " +
                     relationship.name);
      }
      Skip();
    }
    return relationship;
  }

  Result<Attribute> ParseAttribute() {
    Attribute attribute;
    Result<std::string> name = Word("attribute name");
    if (!name.ok()) return name.status();
    attribute.name = *name;
    Skip();
    if (!Consume(':')) return Error("expected ':' after attribute name");
    Result<std::string> type = Word("attribute type");
    if (!type.ok()) return type.status();
    attribute.type = *type;
    Skip();
    while (!Consume(';')) {
      Result<std::string> modifier = Word("attribute modifier or ';'");
      if (!modifier.ok()) return modifier.status();
      if (*modifier == "optional") {
        attribute.mandatory = false;
      } else if (*modifier == "multi") {
        attribute.functional = false;
      } else {
        return Error("unknown attribute modifier '" + *modifier + "'");
      }
      Skip();
    }
    return attribute;
  }

  Result<Role> ParseRole() {
    Role role;
    Result<std::string> name = Word("role name");
    if (!name.ok()) return name.status();
    role.name = *name;
    Skip();
    if (!Consume(':')) return Error("expected ':' after role name");
    Result<std::string> entity = Word("role entity");
    if (!entity.ok()) return entity.status();
    role.entity = *entity;
    Skip();
    while (!Consume(';')) {
      Result<std::string> modifier = Word("role modifier or ';'");
      if (!modifier.ok()) return modifier.status();
      if (*modifier == "mandatory") {
        role.total_participation = true;
      } else if (*modifier == "unique") {
        role.unique_participation = true;
      } else {
        return Error("unknown role modifier '" + *modifier + "'");
      }
      Skip();
    }
    return role;
  }

  // ---- lexing helpers ----

  void Skip() {
    for (;;) {
      while (!AtEnd() && std::isspace(static_cast<unsigned char>(Cur()))) {
        Advance();
      }
      if (!AtEnd() && Cur() == '%') {
        while (!AtEnd() && Cur() != '\n') Advance();
        continue;
      }
      return;
    }
  }

  Result<std::string> Word(const char* what) {
    Skip();
    if (AtEnd() || (!std::isalpha(static_cast<unsigned char>(Cur())) &&
                    Cur() != '_')) {
      return Error(StrCat("expected ", what));
    }
    std::string word;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Cur())) ||
                        Cur() == '_')) {
      word += Advance();
    }
    return word;
  }

  bool Peek(std::string_view word) {
    Skip();
    if (text_.substr(pos_, word.size()) != word) return false;
    size_t after = pos_ + word.size();
    return after >= text_.size() ||
           !(std::isalnum(static_cast<unsigned char>(text_[after])) ||
             text_[after] == '_');
  }

  bool Consume(char c) {
    Skip();
    if (AtEnd() || Cur() != c) return false;
    Advance();
    return true;
  }

  Status Error(std::string message) const {
    int line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return InvalidArgumentError(
        StrCat("ER parse error near line ", line, ": ", message));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Cur() const { return text_[pos_]; }
  char Advance() { return text_[pos_++]; }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<ErSchema> ParseErSchema(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace floq::er
