#ifndef FLOQ_ER_ER_SCHEMA_H_
#define FLOQ_ER_ER_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "term/atom.h"
#include "term/world.h"
#include "util/status.h"

// Entity-Relationship schemas compiled into F-logic Lite. The paper (§1)
// motivates exactly this pipeline: "in practice, constraints typically
// come from design tools that follow certain methodology, such as the
// Entity-Relationship Model", citing the companion work on containment
// under E-R constraints. This module provides an E-R DSL and its
// compilation into the P_FL encoding, so that E-R-designed schemas get
// Sigma_FL containment reasoning for free.
//
// DSL example:
//
//   entity person {
//     attribute name : string;              % mandatory, single-valued
//     attribute age : number optional;      % {0:1}
//     attribute hobby : string multi;       % {1:*}
//     attribute nick : string optional multi;  % no constraint
//   }
//   entity student isa person {
//     attribute major : string;
//   }
//   relationship enrolled {
//     role who : student mandatory;         % every student is enrolled
//     role what : course unique;            % ... in at most one course
//     attribute grade : number optional;
//   }
//
// Compilation (the standard reified encoding):
//   * entity E isa F                  -> sub(E, F)
//   * attribute a : T on E           -> type(E, a, T)
//       default (exactly one)         -> mandatory(a, E), funct(a, E)
//       optional drops mandatory; multi drops funct
//   * relationship R with role r : E -> R is a class whose instances are
//     the relationship tuples:
//       type(R, r, E), mandatory(r, R), funct(r, R)
//     and an inverse attribute r_of_R on E typed by R:
//       type(E, r_of_R, R)
//       role ... mandatory -> mandatory(r_of_R, E)   (total participation)
//       role ... unique    -> funct(r_of_R, E)       (at most one tuple)

namespace floq::er {

struct Attribute {
  std::string name;
  std::string type;
  bool mandatory = true;   // lower bound 1 (default; `optional` clears)
  bool functional = true;  // upper bound 1 (default; `multi` clears)
};

struct Entity {
  std::string name;
  std::vector<std::string> supertypes;
  std::vector<Attribute> attributes;
};

struct Role {
  std::string name;
  std::string entity;
  bool total_participation = false;   // `mandatory`
  bool unique_participation = false;  // `unique`
};

struct Relationship {
  std::string name;
  std::vector<Role> roles;
  std::vector<Attribute> attributes;
};

class ErSchema {
 public:
  std::vector<Entity> entities;
  std::vector<Relationship> relationships;

  /// Structural validation: unique names, roles refer to declared
  /// entities, ISA targets declared, relationships have >= 2 roles, no
  /// ISA cycles.
  Status Validate() const;

  /// Compiles the schema into P_FL facts (ground, schema-level).
  std::vector<Atom> ToFacts(World& world) const;

  /// The name of the inverse attribute placed on the role's entity.
  static std::string InverseAttributeName(const Relationship& relationship,
                                          const Role& role) {
    return role.name + "_of_" + relationship.name;
  }
};

/// Parses the DSL sketched above. '%' comments to end of line.
Result<ErSchema> ParseErSchema(std::string_view text);

}  // namespace floq::er

#endif  // FLOQ_ER_ER_SCHEMA_H_
