#ifndef FLOQ_CHASE_CHASE_H_
#define FLOQ_CHASE_CHASE_H_

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "chase/sigma_fl.h"
#include "datalog/fact_index.h"
#include "query/conjunctive_query.h"
#include "term/world.h"
#include "util/deadline.h"

// The chase of a conjunctive meta-query with respect to Sigma_FL
// (Definition 2 of the paper), organized as in Section 4: a terminating
// preliminary phase with Sigma_FL^- = Sigma_FL - {rho_5} whose conjuncts
// all sit at level 0, followed by the (possibly infinite) cyclic phase in
// which rho_5 invents fresh nulls and levels grow. The engine materializes
// the chase breadth-first, level by level, up to a caller-supplied level
// cap — Theorem 12 shows the cap |q2| * 2|q1| suffices for containment.
//
// Two entry points exist: the one-shot ChaseQuery below, and ResumableChase,
// a handle that keeps the engine state (FactIndex, delta frontier, level
// bookkeeping, union-find) alive so the materialized prefix can later be
// *deepened* from level k to k' > k without recomputing levels <= k. Batch
// workloads (ContainmentEngine) cache one handle per query and deepen it
// lazily to the largest level any containment pair demands.

namespace floq {

enum class ChaseOutcome {
  /// Fixpoint reached: the chase is finite and fully materialized.
  kCompleted,
  /// All conjuncts up to the level cap are materialized; deeper conjuncts
  /// exist but are not needed.
  kLevelCapped,
  /// The atom budget was exhausted before the level cap.
  kBudgetExceeded,
  /// A resource governor (deadline or cancellation; see util/deadline.h)
  /// stopped the run mid-materialization. Unlike kBudgetExceeded this is
  /// resumable: Deepen / EnsureLevel under a fresh governor picks up where
  /// the run stopped (the first resumed collection rescans the instance).
  kInterrupted,
  /// rho_4 tried to equate two distinct constants: the chase fails, i.e.
  /// the query has no answer on any database satisfying Sigma_FL.
  kFailed,
};

const char* ChaseOutcomeName(ChaseOutcome outcome);

struct ChaseOptions {
  /// Materialize conjuncts up to this level of the chase graph.
  int max_level = std::numeric_limits<int>::max();
  /// Hard cap on materialized conjuncts.
  uint64_t max_atoms = 1'000'000;
  /// Record cross-arcs (Definition 3(4)); costs extra bookkeeping.
  bool record_cross_arcs = false;
  /// Semi-naive delta windows for rule collection (the default). Disabling
  /// rescans the whole instance every round — kept for the ablation
  /// benchmark bench_ablation.
  bool use_delta_windows = true;
  /// The paper's chase is *restricted*: rho_5 fires only when no
  /// data(O, A, ·) conjunct exists (Definition 2(2)(ii)). Setting this to
  /// false gives the *oblivious* chase of the later Datalog± literature:
  /// rho_5 fires exactly once per mandatory(A, O) fact regardless of
  /// existing values. The oblivious chase is a superset of the restricted
  /// one and remains sound for containment; it is exposed for study and
  /// comparison, not used by CheckContainment.
  bool restricted_rho5 = true;
  /// Optional resource governor (not owned; must outlive the run). Checked
  /// at round boundaries and ticked per inserted conjunct; a trip stops
  /// the run with ChaseOutcome::kInterrupted. One-shot entry points
  /// (ChaseQuery, GenericChaseEngine) read it from here; ResumableChase
  /// instead takes a per-call governor in EnsureLevel so each resume can
  /// run under its caller's budget.
  ExecGovernor* governor = nullptr;
};

/// Per-conjunct provenance: generating rule and the conjuncts its body
/// mapped onto (the sources of the chase-graph arcs into this node).
struct ChaseNodeMeta {
  int level = 0;
  RuleId rule = kRho0;  // kRho0 = initial conjunct from body(q)
  std::vector<uint32_t> parents;
};

/// An arc of the chase graph G(q) (Definition 3).
struct ChaseArc {
  uint32_t from = 0;
  uint32_t to = 0;
  RuleId rule = kRho0;
  bool cross = false;  // Definition 3(4) cross-arc
};

struct ChaseStats {
  uint64_t rounds = 0;
  uint64_t tgd_applications = 0;
  uint64_t fresh_nulls = 0;
  uint64_t egd_merges = 0;
  uint64_t rebuilds = 0;
  /// Applications per Sigma_FL rule, indexed by RuleId (kRho1..kRho12;
  /// slot 0 is unused — initial conjuncts are not rule firings). The
  /// generic driver's user TGDs carry synthetic ids >= 1000 and are
  /// counted in tgd_applications only.
  std::array<uint64_t, 13> rule_fired{};
};

class ChaseResult;

/// Folds the difference between two stats snapshots (plus the run's final
/// shape) into the process-wide MetricsRegistry. No-op when metrics are
/// disabled. Called by both chase drivers at the end of every run/resume;
/// exposed so external chase-like drivers can report the same series.
void FoldChaseMetrics(const ChaseStats& before, const ChaseStats& after,
                      const ChaseResult& result, bool generic_driver);

/// The materialized (prefix of the) chase, with the chase graph.
class ChaseResult {
 public:
  ChaseOutcome outcome() const { return outcome_; }
  bool failed() const { return outcome_ == ChaseOutcome::kFailed; }

  /// All materialized conjuncts with id-addressed metadata. Conjunct ids
  /// are dense [0, size()).
  const FactIndex& conjuncts() const { return conjuncts_; }
  uint32_t size() const { return conjuncts_.size(); }
  const Atom& conjunct(uint32_t id) const { return conjuncts_.at(id); }

  /// Compacts the conjunct posting lists into the block-compressed frozen
  /// tier (FactIndex::Freeze). Call at the chase/search phase boundary:
  /// the hom search re-reads the same lists at every backtracking node, so
  /// it should stream the frozen tier, while outstanding PostingViews are
  /// invalidated. Further chase rounds still work — inserts append to
  /// fresh tails.
  void FreezeConjuncts() { conjuncts_.Freeze(); }
  const ChaseNodeMeta& meta(uint32_t id) const { return meta_[id]; }
  int LevelOf(uint32_t id) const { return meta_[id].level; }

  /// The head of the query as rewritten by the chase (rho_4 can rename
  /// head terms; Example 1 of the paper).
  const std::vector<Term>& head() const { return head_; }

  /// Highest level among materialized conjuncts.
  int max_level() const { return max_level_; }

  /// Number of conjuncts with level <= `level`.
  uint32_t CountUpToLevel(int level) const;

  /// All arcs of the chase graph: generation arcs from the per-node
  /// provenance plus recorded cross-arcs.
  std::vector<ChaseArc> Arcs() const;

  /// Primary arc test (Definition 3(5)): from level k to level k+1.
  bool IsPrimary(const ChaseArc& arc) const {
    return meta_[arc.to].level == meta_[arc.from].level + 1;
  }

  const ChaseStats& stats() const { return stats_; }

  /// Multi-line dump: one conjunct per line with level and provenance.
  std::string DebugString(const World& world) const;

 private:
  friend class ChaseEngine;
  friend class GenericChaseEngine;

  ChaseOutcome outcome_ = ChaseOutcome::kCompleted;
  FactIndex conjuncts_;
  std::vector<ChaseNodeMeta> meta_;
  std::vector<ChaseArc> cross_arcs_;
  std::vector<Term> head_;
  int max_level_ = 0;
  ChaseStats stats_;
};

/// Chases `query` w.r.t. Sigma_FL. All terms must come from `world` (fresh
/// nulls are drawn from it). The body of the query is taken as the initial
/// database; its variables are treated as values throughout.
ChaseResult ChaseQuery(World& world, const ConjunctiveQuery& query,
                       const ChaseOptions& options = {});

class ChaseEngine;

/// A memoized, resumable chase of one query: the engine state survives
/// between calls, so EnsureLevel(k') after EnsureLevel(k) only materializes
/// the missing levels (k, k']. `options.max_level` is ignored — the level
/// cap always comes from EnsureLevel.
///
/// Concurrency contract: a ResumableChase is single-threaded while it is
/// being deepened (the chase draws fresh nulls from the shared World).
/// Once Freeze() has been called the handle is immutable — result() and
/// EnsureLevel() calls that need no deepening are const reads of the
/// FactIndex and may run from many threads concurrently. EnsureLevel()
/// FLOQ_CHECK-fails if it would have to deepen a frozen handle.
class ResumableChase {
 public:
  ResumableChase(World& world, const ConjunctiveQuery& query,
                 const ChaseOptions& options = {});
  ~ResumableChase();
  ResumableChase(ResumableChase&&) noexcept;
  ResumableChase& operator=(ResumableChase&&) noexcept;

  /// Materializes conjuncts at least up to `level` (the first call runs
  /// phases A and B from scratch; later calls resume phase B). A chase
  /// that already completed, failed, or exhausted its budget is returned
  /// unchanged; an interrupted chase (a previous governor tripped) is
  /// always resumed, even at the same level. `governor`, when non-null,
  /// bounds this call only. Returns result().
  const ChaseResult& EnsureLevel(int level, ExecGovernor* governor = nullptr);

  /// The materialized prefix. Valid only after the first EnsureLevel.
  const ChaseResult& result() const;

  /// True once EnsureLevel has run the initial chase.
  bool started() const { return started_; }

  /// The level cap the engine has materialized to so far (meaningful only
  /// after the first EnsureLevel).
  int level_cap() const;

  /// Number of times EnsureLevel actually resumed phase B on an existing
  /// materialization (cache-friendly deepenings, excluding the first run).
  uint64_t deepen_count() const { return deepen_count_; }

  /// Declares the handle immutable: any further EnsureLevel call that
  /// would deepen the chase aborts. Call before sharing across threads.
  void Freeze() { frozen_ = true; }
  /// Lifts the immutability declaration. Only legal once no other thread
  /// holds a reference anymore (i.e., after the sharing fan-out joined).
  void Thaw() { frozen_ = false; }
  bool frozen() const { return frozen_; }

 private:
  World* world_;
  ConjunctiveQuery query_;
  ChaseOptions options_;
  std::unique_ptr<ChaseEngine> engine_;
  bool started_ = false;
  bool frozen_ = false;
  uint64_t deepen_count_ = 0;
};

/// The preliminary chase only (Sigma_FL^-): terminating, everything at
/// level 0. Equivalent to ChaseQuery with max_level = 0.
ChaseResult ChaseLevelZero(World& world, const ConjunctiveQuery& query,
                           const ChaseOptions& options = {});

}  // namespace floq

#endif  // FLOQ_CHASE_CHASE_H_
