#include "chase/graph_dot.h"

#include <map>

#include "util/strings.h"

namespace floq {

namespace {

// DOT string literals need quote escaping; conjunct text is alnum + ()_,#
// so only quotes and backslashes matter.
std::string EscapeDot(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string ChaseGraphToDot(const ChaseResult& chase, const World& world,
                            const DotOptions& options) {
  std::string out = "digraph chase {\n";
  out += StrCat("  label=\"", EscapeDot(options.title), "\";\n");
  out += "  labelloc=t;\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n";

  // Nodes grouped by level into same-rank clusters.
  std::map<int, std::vector<uint32_t>> by_level;
  for (uint32_t id = 0; id < chase.size(); ++id) {
    if (chase.LevelOf(id) <= options.max_level) {
      by_level[chase.LevelOf(id)].push_back(id);
    }
  }
  for (const auto& [level, ids] : by_level) {
    out += StrCat("  { rank=same; \"L", level, "\" [shape=plaintext];");
    for (uint32_t id : ids) {
      out += StrCat(" n", id, ";");
    }
    out += " }\n";
    for (uint32_t id : ids) {
      out += StrCat("  n", id, " [label=\"",
                    EscapeDot(chase.conjunct(id).ToString(world)), "\"];\n");
    }
  }

  // Invisible spine that orders the level labels.
  int previous_level = -1;
  for (const auto& [level, ids] : by_level) {
    if (previous_level >= 0) {
      out += StrCat("  \"L", previous_level, "\" -> \"L", level,
                    "\" [style=invis];\n");
    }
    previous_level = level;
  }

  for (const ChaseArc& arc : chase.Arcs()) {
    if (chase.LevelOf(arc.from) > options.max_level ||
        chase.LevelOf(arc.to) > options.max_level) {
      continue;
    }
    std::string attrs = StrCat("label=\"r", int(arc.rule), "\", fontsize=8");
    if (arc.cross) {
      attrs += ", style=dashed, color=gray40";
    } else if (chase.IsPrimary(arc)) {
      attrs += ", penwidth=2.0";
    }
    out += StrCat("  n", arc.from, " -> n", arc.to, " [", attrs, "];\n");
  }

  out += "}\n";
  return out;
}

}  // namespace floq
