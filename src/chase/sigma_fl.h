#ifndef FLOQ_CHASE_SIGMA_FL_H_
#define FLOQ_CHASE_SIGMA_FL_H_

#include <vector>

#include "datalog/rule.h"
#include "term/atom.h"
#include "term/world.h"

// The rule set Sigma_FL of Section 2: the low-level encoding of F-logic
// Lite semantics. Ten rules are plain Datalog TGDs; rho_4 is an
// equality-generating dependency; rho_5 is an existential TGD (it invents
// fresh values for mandatory attributes).
//
//   rho_1  member(V,T)      :- type(O,A,T), data(O,A,V).
//   rho_2  sub(C1,C2)       :- sub(C1,C3), sub(C3,C2).
//   rho_3  member(O,C1)     :- member(O,C), sub(C,C1).
//   rho_4  V = W            :- data(O,A,V), data(O,A,W), funct(A,O).
//   rho_5  exists V data(O,A,V) :- mandatory(A,O).
//   rho_6  type(O,A,T)      :- member(O,C), type(C,A,T).
//   rho_7  type(C,A,T)      :- sub(C,C1), type(C1,A,T).
//   rho_8  type(C,A,T)      :- type(C,A,T1), sub(T1,T).
//   rho_9  mandatory(A,C)   :- sub(C,C1), mandatory(A,C1).
//   rho_10 mandatory(A,O)   :- member(O,C), mandatory(A,C).
//   rho_11 funct(A,C)       :- sub(C,C1), funct(A,C1).
//   rho_12 funct(A,O)       :- member(O,C), funct(A,C).

namespace floq {

/// Rule identifiers; kRho0 marks initial conjuncts (body of the query).
enum RuleId : int {
  kRho0 = 0,
  kRho1 = 1,
  kRho2 = 2,
  kRho3 = 3,
  kRho4 = 4,
  kRho5 = 5,
  kRho6 = 6,
  kRho7 = 7,
  kRho8 = 8,
  kRho9 = 9,
  kRho10 = 10,
  kRho11 = 11,
  kRho12 = 12,
};

/// A Datalog TGD of Sigma_FL tagged with its paper number.
struct SigmaTgd {
  RuleId id;
  Rule rule;
};

/// The EGD rho_4: if the body matches, the images of `v` and `w` are
/// equated.
struct SigmaEgd {
  std::vector<Atom> body;
  Term v;
  Term w;
};

/// The existential TGD rho_5: if mandatory(A,O) matches and no
/// data(O,A,·) conjunct exists, add data(O,A,fresh).
struct SigmaExistential {
  Atom body;     // mandatory(A, O)
  Term object;   // O
  Term attr;     // A
};

/// The whole of Sigma_FL, instantiated with variables from `world`.
struct SigmaFL {
  std::vector<SigmaTgd> tgds;  // rho_1..rho_3, rho_6..rho_12 in rho order
  SigmaEgd egd;                // rho_4
  SigmaExistential existential;  // rho_5
};

/// Builds Sigma_FL. The rule variables are fresh variables of `world`
/// (they never collide with query variables because matching binds them
/// through explicit substitutions only).
SigmaFL MakeSigmaFL(World& world);

/// The Datalog fragment Sigma_FL minus {rho_4, rho_5} as plain rules, for
/// saturating ground databases with the Datalog engine.
std::vector<Rule> SigmaFLDatalogRules(World& world);

}  // namespace floq

#endif  // FLOQ_CHASE_SIGMA_FL_H_
