#ifndef FLOQ_CHASE_TERM_UNION_FIND_H_
#define FLOQ_CHASE_TERM_UNION_FIND_H_

#include <unordered_map>

#include "term/term.h"
#include "term/world.h"
#include "util/status.h"
#include "util/strings.h"

// Union-find over terms for EGD application (rule rho_4). The
// representative of a class is always its chase-order minimum (constants
// before nulls before variables), implementing Definition 2(1)(b); merging
// two distinct constants fails the chase (Definition 2(1)(a)).

namespace floq {

class TermUnionFind {
 public:
  TermUnionFind() = default;

  /// Representative of `t`'s class (with path compression).
  Term Find(Term t) {
    auto it = parent_.find(t);
    if (it == parent_.end()) return t;
    Term root = Find(it->second);
    it->second = root;
    return root;
  }

  /// Merges the classes of `a` and `b`; the chase-order-smaller
  /// representative wins. Fails iff both classes are rooted at distinct
  /// constants (the chase construction fails, Definition 2(1)(a)).
  Status Merge(Term a, Term b, const World& world) {
    Term ra = Find(a);
    Term rb = Find(b);
    if (ra == rb) return Status::Ok();
    if (ra.IsConstant() && rb.IsConstant()) {
      return FailedPreconditionError(
          StrCat("chase failure: cannot equate distinct constants ",
                 world.NameOf(ra), " and ", world.NameOf(rb)));
    }
    if (world.PrecedesInChaseOrder(ra, rb)) {
      parent_[rb] = ra;
    } else {
      parent_[ra] = rb;
    }
    ++merge_count_;
    return Status::Ok();
  }

  /// Number of successful merges performed.
  uint64_t merge_count() const { return merge_count_; }

  bool empty() const { return parent_.empty(); }

 private:
  std::unordered_map<Term, Term, TermHash> parent_;
  uint64_t merge_count_ = 0;
};

}  // namespace floq

#endif  // FLOQ_CHASE_TERM_UNION_FIND_H_
