#ifndef FLOQ_CHASE_GENERIC_CHASE_H_
#define FLOQ_CHASE_GENERIC_CHASE_H_

#include <vector>

#include "chase/chase.h"
#include "chase/dependencies.h"
#include "query/conjunctive_query.h"
#include "term/world.h"

// The restricted chase for *arbitrary* user dependency sets (TGDs with
// existential heads + EGDs), generalizing the Sigma_FL-specialized engine
// of chase.h. Combined with the weak-acyclicity test of dependencies.h
// this realizes the paper's future-work direction: for any weakly acyclic
// set the chase terminates, so the Theorem-4 containment criterion is a
// complete decision procedure for that class.
//
// Differences from the Sigma_FL engine (chase.h):
//   * no Sigma_FL^- "everything at level 0" phase — levels count from the
//     initial conjuncts uniformly;
//   * ChaseNodeMeta::rule is RuleId(1000 + i) for tgds[i] (and kRho0 for
//     initial conjuncts); cross-arcs are not recorded;
//   * only the restricted semantics is implemented
//     (ChaseOptions::restricted_rho5 is ignored).

namespace floq {

/// Chases body(query) under `dependencies`. The query's variables are
/// treated as values, as in ChaseQuery.
ChaseResult GenericChase(World& world, const ConjunctiveQuery& query,
                         const DependencySet& dependencies,
                         const ChaseOptions& options = {});

/// Chases a plain set of atoms (e.g. a ground database).
ChaseResult GenericChaseFacts(World& world, const std::vector<Atom>& facts,
                              const DependencySet& dependencies,
                              const ChaseOptions& options = {});

}  // namespace floq

#endif  // FLOQ_CHASE_GENERIC_CHASE_H_
