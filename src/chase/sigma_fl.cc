#include "chase/sigma_fl.h"

namespace floq {

SigmaFL MakeSigmaFL(World& world) {
  SigmaFL sigma;

  // Rule variables must never coincide with variables of chased queries
  // (chase conjuncts carry query variables as values, and the matcher
  // binds pattern variables syntactically), so each Sigma_FL instance
  // draws globally fresh variables.
  Term o = world.MakeReservedVariable();
  Term a = world.MakeReservedVariable();
  Term t = world.MakeReservedVariable();
  Term t1 = world.MakeReservedVariable();
  Term v = world.MakeReservedVariable();
  Term w = world.MakeReservedVariable();
  Term c = world.MakeReservedVariable();
  Term c1 = world.MakeReservedVariable();
  Term c2 = world.MakeReservedVariable();
  Term c3 = world.MakeReservedVariable();

  // rho_1: member(V,T) :- type(O,A,T), data(O,A,V).
  sigma.tgds.push_back(
      {kRho1,
       Rule{Atom::Member(v, t), {Atom::Type(o, a, t), Atom::Data(o, a, v)}}});
  // rho_2: sub(C1,C2) :- sub(C1,C3), sub(C3,C2).
  sigma.tgds.push_back(
      {kRho2, Rule{Atom::Sub(c1, c2), {Atom::Sub(c1, c3), Atom::Sub(c3, c2)}}});
  // rho_3: member(O,C1) :- member(O,C), sub(C,C1).
  sigma.tgds.push_back(
      {kRho3,
       Rule{Atom::Member(o, c1), {Atom::Member(o, c), Atom::Sub(c, c1)}}});
  // rho_6: type(O,A,T) :- member(O,C), type(C,A,T).
  sigma.tgds.push_back(
      {kRho6,
       Rule{Atom::Type(o, a, t), {Atom::Member(o, c), Atom::Type(c, a, t)}}});
  // rho_7: type(C,A,T) :- sub(C,C1), type(C1,A,T).
  sigma.tgds.push_back(
      {kRho7,
       Rule{Atom::Type(c, a, t), {Atom::Sub(c, c1), Atom::Type(c1, a, t)}}});
  // rho_8: type(C,A,T) :- type(C,A,T1), sub(T1,T).
  sigma.tgds.push_back(
      {kRho8,
       Rule{Atom::Type(c, a, t), {Atom::Type(c, a, t1), Atom::Sub(t1, t)}}});
  // rho_9: mandatory(A,C) :- sub(C,C1), mandatory(A,C1).
  sigma.tgds.push_back(
      {kRho9,
       Rule{Atom::Mandatory(a, c), {Atom::Sub(c, c1), Atom::Mandatory(a, c1)}}});
  // rho_10: mandatory(A,O) :- member(O,C), mandatory(A,C).
  sigma.tgds.push_back(
      {kRho10, Rule{Atom::Mandatory(a, o),
                    {Atom::Member(o, c), Atom::Mandatory(a, c)}}});
  // rho_11: funct(A,C) :- sub(C,C1), funct(A,C1).
  sigma.tgds.push_back(
      {kRho11, Rule{Atom::Funct(a, c), {Atom::Sub(c, c1), Atom::Funct(a, c1)}}});
  // rho_12: funct(A,O) :- member(O,C), funct(A,C).
  sigma.tgds.push_back(
      {kRho12,
       Rule{Atom::Funct(a, o), {Atom::Member(o, c), Atom::Funct(a, c)}}});

  // rho_4: V = W :- data(O,A,V), data(O,A,W), funct(A,O).
  sigma.egd.body = {Atom::Data(o, a, v), Atom::Data(o, a, w),
                    Atom::Funct(a, o)};
  sigma.egd.v = v;
  sigma.egd.w = w;

  // rho_5: exists V. data(O,A,V) :- mandatory(A,O).
  sigma.existential.body = Atom::Mandatory(a, o);
  sigma.existential.object = o;
  sigma.existential.attr = a;

  return sigma;
}

std::vector<Rule> SigmaFLDatalogRules(World& world) {
  SigmaFL sigma = MakeSigmaFL(world);
  std::vector<Rule> rules;
  rules.reserve(sigma.tgds.size());
  for (SigmaTgd& tgd : sigma.tgds) rules.push_back(std::move(tgd.rule));
  return rules;
}

}  // namespace floq
