#include "chase/chase.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "chase/term_union_find.h"
#include "datalog/evaluator.h"
#include "datalog/match.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/trace.h"

namespace floq {

const char* ChaseOutcomeName(ChaseOutcome outcome) {
  switch (outcome) {
    case ChaseOutcome::kCompleted: return "COMPLETED";
    case ChaseOutcome::kLevelCapped: return "LEVEL_CAPPED";
    case ChaseOutcome::kBudgetExceeded: return "BUDGET_EXCEEDED";
    case ChaseOutcome::kInterrupted: return "INTERRUPTED";
    case ChaseOutcome::kFailed: return "FAILED";
  }
  return "?";
}

namespace {

// A TGD application found during a collection pass: the instantiated head,
// the conjuncts the rule body mapped onto, and the level the new conjunct
// would get (Definition 3(3)).
struct PendingTgd {
  RuleId id;
  Atom head;
  std::vector<uint32_t> parents;
  int level;
};

// A rho_5 application: mandatory(attr, object) with no data(object, attr, ·)
// conjunct present.
struct PendingExistential {
  Term object;
  Term attr;
  uint32_t parent;
  int level;
};

}  // namespace

class ChaseEngine {
 public:
  ChaseEngine(World& world, const ChaseOptions& options)
      : world_(world), options_(options), sigma_(MakeSigmaFL(world)) {}

  void Run(const ConjunctiveQuery& query, ExecGovernor* governor = nullptr) {
    TraceSpan span("chase.run");
    const ChaseStats before = result_.stats_;
    // Initial conjuncts: body(q) at level 0. Inserted before the governor
    // is armed: a resumed run cannot re-seed them, so they must all be
    // present before any trip can stop the engine.
    for (const Atom& atom : query.body()) {
      if (!InsertNode(atom, 0, kRho0, {})) return Finish(span, before);
    }
    result_.head_ = query.head();
    SetGovernor(governor);
    Advance();
    Finish(span, before);
  }

  /// Resumes a kLevelCapped chase with a deeper level cap, or an
  /// interrupted chase at any level. Instances that were deferred beyond
  /// the old cap (or lost when a governor tripped mid-batch) are no longer
  /// in any delta window, so the first resumed collection rescans the
  /// whole instance. No-op on completed, failed, or budget-exhausted
  /// chases. `governor`, when non-null, bounds this resume only.
  void Deepen(int new_max_level, ExecGovernor* governor = nullptr) {
    ChaseOutcome outcome = result_.outcome_;
    if (outcome == ChaseOutcome::kLevelCapped) {
      if (new_max_level <= options_.max_level) return;
    } else if (outcome != ChaseOutcome::kInterrupted) {
      return;
    }
    TraceSpan span("chase.deepen");
    const ChaseStats before = result_.stats_;
    options_.max_level = std::max(options_.max_level, new_max_level);
    SetGovernor(governor);
    full_recheck_ = true;
    delta_.clear();
    Advance();
    Finish(span, before);
  }

  const ChaseResult& result() const { return result_; }
  ChaseResult TakeResult() { return std::move(result_); }
  int level_cap() const { return options_.max_level; }

 private:
  void SetGovernor(ExecGovernor* governor) {
    governor_ = governor != nullptr ? governor : options_.governor;
    match_options_.governor = governor_;
  }

  // True when the governor has tripped. Latches kInterrupted and arms a
  // full rescan: a trip can lose pending applications mid-batch (they are
  // in no delta window afterwards), so a resumed run must re-collect from
  // the whole instance.
  bool Interrupted() {
    if (governor_ == nullptr || governor_->CheckNow()) return false;
    result_.outcome_ = ChaseOutcome::kInterrupted;
    full_recheck_ = true;
    return true;
  }

  // Drives the chase from wherever it stopped: phase A (the preliminary
  // chase with Sigma_FL^-) to fixpoint, then phase B under the current
  // level cap. First call and resumed calls share this path; phase A is
  // skipped once it has completed.
  void Advance() {
    // Always reach the EGD fixpoint first: a resumed run may have been
    // interrupted mid-merge, and quiescence detection assumes a
    // rho_4-saturated instance. At fixpoint this is one cheap scan.
    if (!EgdFixpoint()) return Seal();

    if (!preliminary_done_) {
      // Phase A: saturate the ten Datalog TGDs (rho_4 interleaved);
      // everything stays at level 0.
      for (;;) {
        if (Interrupted()) return Seal();
        DeltaWindow window = TakeDelta();
        std::vector<PendingTgd> pending =
            CollectTgds(window, /*force_level_zero=*/true);
        if (pending.empty()) break;
        for (const PendingTgd& p : pending) {
          if (!ApplyTgd(p)) return Seal();
        }
        if (!EgdFixpoint()) return Seal();
        ++result_.stats_.rounds;
      }
      // An empty collection pass under a tripped governor is truncation,
      // not fixpoint — do not advance the phase marker.
      if (Interrupted()) return Seal();
      preliminary_done_ = true;
      // Phase B: rho_5 joins in and levels grow. Mandatory conjuncts of
      // level 0 need a rho_5 pass, so rescan.
      full_recheck_ = true;
      delta_.clear();
    }
    RunCyclic();
  }

  // Runs phase B until quiescence under the current level cap, setting the
  // outcome (kCompleted if nothing applicable remains anywhere,
  // kLevelCapped if instances beyond the cap were deferred).
  void RunCyclic() {
    bool saw_beyond_cap = false;
    for (;;) {
      if (Interrupted()) return Seal();
      DeltaWindow window = TakeDelta();
      std::vector<PendingTgd> tgds =
          CollectTgds(window, /*force_level_zero=*/false);
      std::vector<PendingExistential> exists = CollectExistentials(window);

      std::vector<PendingTgd> tgds_now;
      std::vector<PendingExistential> exists_now;
      for (PendingTgd& p : tgds) {
        if (p.level <= options_.max_level) {
          tgds_now.push_back(std::move(p));
        } else {
          saw_beyond_cap = true;
        }
      }
      for (PendingExistential& p : exists) {
        if (p.level <= options_.max_level) {
          exists_now.push_back(std::move(p));
        } else {
          saw_beyond_cap = true;
        }
      }

      if (tgds_now.empty() && exists_now.empty()) {
        // A trip during collection truncates the pending sets; re-check
        // before declaring quiescence.
        if (Interrupted()) return Seal();
        result_.outcome_ = saw_beyond_cap ? ChaseOutcome::kLevelCapped
                                          : ChaseOutcome::kCompleted;
        return Seal();
      }

      for (const PendingTgd& p : tgds_now) {
        if (!ApplyTgd(p)) return Seal();
      }
      for (const PendingExistential& p : exists_now) {
        if (!ApplyExistential(p)) return Seal();
      }
      if (!EgdFixpoint()) return Seal();
      ++result_.stats_.rounds;
      // Beyond-cap instances remain applicable; they will be re-collected
      // only while their body atoms stay in the delta window, so remember
      // that we saw them.
    }
  }
  FactIndex& index() { return result_.conjuncts_; }

  // ---- node insertion -------------------------------------------------

  // Returns false if the atom budget is exhausted or the governor tripped
  // (outcome set).
  bool InsertNode(const Atom& atom, int level, RuleId rule,
                  std::vector<uint32_t> parents) {
    if (governor_ != nullptr && !governor_->Tick()) {
      result_.outcome_ = ChaseOutcome::kInterrupted;
      full_recheck_ = true;
      return false;
    }
    auto [id, inserted] = index().Insert(atom);
    if (!inserted) return true;
    FLOQ_CHECK_EQ(id, result_.meta_.size());
    result_.meta_.push_back(ChaseNodeMeta{level, rule, std::move(parents)});
    result_.max_level_ = std::max(result_.max_level_, level);
    delta_.push_back(atom);
    if (rule != kRho0) ++result_.stats_.tgd_applications;
    if (rule > kRho0 && rule <= kRho12) {
      ++result_.stats_.rule_fired[size_t(rule)];
    }
    if (index().size() > options_.max_atoms) {
      result_.outcome_ = ChaseOutcome::kBudgetExceeded;
      return false;
    }
    return true;
  }

  bool ApplyTgd(const PendingTgd& p) {
    if (index().Contains(p.head)) {
      // Another application in this batch got there first: by
      // Definition 3(4) this is a cross-arc situation.
      RecordCrossArcs(p.parents, index().IdOf(p.head), p.id);
      return true;
    }
    return InsertNode(p.head, p.level, p.id, p.parents);
  }

  bool ApplyExistential(const PendingExistential& p) {
    if (options_.restricted_rho5) {
      // Re-check the restriction against the current instance: an earlier
      // application in this batch may have supplied the data conjunct.
      if (uint32_t blocker = FindDataFor(p.object, p.attr);
          blocker != kInvalidFactId) {
        RecordCrossArcs({p.parent}, blocker, kRho5);
        return true;
      }
    }
    rho5_fired_.insert({p.object, p.attr});
    Term fresh = world_.MakeFreshNull();
    ++result_.stats_.fresh_nulls;
    return InsertNode(Atom::Data(p.object, p.attr, fresh), p.level, kRho5,
                      {p.parent});
  }

  // Id of some data(object, attr, ·) conjunct, or kInvalidFactId.
  uint32_t FindDataFor(Term object, Term attr) const {
    const FactIndex& idx = result_.conjuncts_;
    const PostingView by_object = idx.WithArgument(pfl::kData, 0, object);
    const PostingView by_attr = idx.WithArgument(pfl::kData, 1, attr);
    const PostingView& scan =
        by_object.size() <= by_attr.size() ? by_object : by_attr;
    for (uint32_t id : scan) {
      const Atom& atom = idx.at(id);
      if (atom.arg(0) == object && atom.arg(1) == attr) return id;
    }
    return kInvalidFactId;
  }

  void RecordCrossArcs(const std::vector<uint32_t>& from, uint32_t to,
                       RuleId rule) {
    if (!options_.record_cross_arcs) return;
    for (uint32_t f : from) {
      uint64_t key = (uint64_t(f) << 32) | to;
      if (cross_seen_.insert({key, rule}).second) {
        result_.cross_arcs_.push_back(ChaseArc{f, to, rule, /*cross=*/true});
      }
    }
  }

  // ---- TGD collection --------------------------------------------------

  // The set of conjuncts added since the previous collection pass, or a
  // request to rescan everything (initially and after EGD rebuilds).
  struct DeltaWindow {
    bool full = false;
    std::vector<Atom> atoms;
  };

  DeltaWindow TakeDelta() {
    DeltaWindow window;
    window.full = full_recheck_ || !options_.use_delta_windows;
    if (!window.full) window.atoms = std::move(delta_);
    delta_.clear();
    full_recheck_ = false;
    return window;
  }

  // Finds every applicable TGD instance (body matches, head not yet
  // present). In delta mode, only instances using at least one conjunct
  // added since the previous collection are searched — applicability of
  // TGDs is monotone, so older instances were found earlier.
  std::vector<PendingTgd> CollectTgds(const DeltaWindow& window,
                                      bool force_level_zero) {
    std::vector<PendingTgd> pending;
    std::unordered_set<Atom, AtomHash> pending_heads;

    auto consider = [&](const SigmaTgd& tgd, const Substitution& match) {
      Atom head = match.Apply(tgd.rule.head);
      std::vector<uint32_t> parents;
      parents.reserve(tgd.rule.body.size());
      int level = 0;
      for (const Atom& body_atom : tgd.rule.body) {
        Atom ground = match.Apply(body_atom);
        uint32_t id = index().IdOf(ground);
        FLOQ_CHECK_NE(id, kInvalidFactId);
        parents.push_back(id);
        level = std::max(level, result_.meta_[id].level);
      }
      if (index().Contains(head)) {
        RecordCrossArcs(parents, index().IdOf(head), tgd.id);
        return;
      }
      if (!pending_heads.insert(head).second) return;
      pending.push_back(PendingTgd{tgd.id, head,
                                   std::move(parents),
                                   force_level_zero ? 0 : level + 1});
    };

    for (const SigmaTgd& tgd : sigma_.tgds) {
      if (window.full) {
        MatchConjunction(tgd.rule.body, index(), Substitution(),
                         [&](const Substitution& match) {
                           consider(tgd, match);
                           return true;
                         },
                         /*stats=*/nullptr, match_options_);
        continue;
      }
      for (size_t pivot = 0; pivot < tgd.rule.body.size(); ++pivot) {
        std::vector<Atom> rest;
        for (size_t i = 0; i < tgd.rule.body.size(); ++i) {
          if (i != pivot) rest.push_back(tgd.rule.body[i]);
        }
        for (const Atom& fact : window.atoms) {
          Substitution subst;
          if (!TryUnifyAtom(tgd.rule.body[pivot], fact, subst)) continue;
          MatchConjunction(rest, index(), subst,
                           [&](const Substitution& match) {
                             consider(tgd, match);
                             return true;
                           },
                           /*stats=*/nullptr, match_options_);
        }
      }
    }
    return pending;
  }

  // Finds every applicable rho_5 instance: a mandatory(A, O) conjunct with
  // no data(O, A, ·) conjunct. Blocking is permanent (data conjuncts are
  // only rewritten, never removed), so delta mode only inspects new
  // mandatory conjuncts; rebuilds force a full recheck.
  std::vector<PendingExistential> CollectExistentials(
      const DeltaWindow& window) {
    std::vector<PendingExistential> pending;
    std::set<std::pair<Term, Term>> seen;

    auto consider = [&](uint32_t id) {
      const Atom& atom = index().at(id);
      Term attr = atom.arg(0);
      Term object = atom.arg(1);
      if (!seen.insert({object, attr}).second) return;
      if (options_.restricted_rho5) {
        uint32_t blocker = FindDataFor(object, attr);
        if (blocker != kInvalidFactId) {
          RecordCrossArcs({id}, blocker, kRho5);
          return;
        }
      } else if (rho5_fired_.count({object, attr}) > 0) {
        return;  // oblivious: fire once per (object, attribute) pair
      }
      pending.push_back(PendingExistential{object, attr, id,
                                           result_.meta_[id].level + 1});
    };

    if (window.full) {
      for (uint32_t id : index().WithPredicate(pfl::kMandatory)) consider(id);
    } else {
      for (const Atom& atom : window.atoms) {
        if (atom.predicate() != pfl::kMandatory) continue;
        uint32_t id = index().IdOf(atom);
        if (id != kInvalidFactId) consider(id);
      }
    }
    return pending;
  }

  // ---- EGD (rho_4) ------------------------------------------------------

  // Applies rho_4 to exhaustion (chase step (a) of Definition 2). Instead
  // of enumerating the quadratic set of homomorphisms of body(rho_4), we
  // exploit its shape: for each funct(A, O) conjunct, all values of
  // data(O, A, ·) form one equivalence class.
  bool EgdFixpoint() {
    for (;;) {
      if (Interrupted()) return false;
      bool merged_any = false;
      for (uint32_t fid : index().WithPredicate(pfl::kFunct)) {
        if (governor_ != nullptr && !governor_->Tick()) {
          result_.outcome_ = ChaseOutcome::kInterrupted;
          full_recheck_ = true;
          return false;
        }
        const Atom& funct = index().at(fid);
        Term attr = funct.arg(0);
        Term object = funct.arg(1);
        const PostingView by_object =
            index().WithArgument(pfl::kData, 0, object);
        const PostingView by_attr =
            index().WithArgument(pfl::kData, 1, attr);
        const PostingView& scan =
            by_object.size() <= by_attr.size() ? by_object : by_attr;
        Term first;
        for (uint32_t id : scan) {
          const Atom& atom = index().at(id);
          if (atom.arg(0) != object || atom.arg(1) != attr) continue;
          if (!first.valid()) {
            first = atom.arg(2);
            continue;
          }
          uint64_t before = uf_.merge_count();
          Status status = uf_.Merge(first, atom.arg(2), world_);
          if (!status.ok()) {
            result_.outcome_ = ChaseOutcome::kFailed;
            return false;
          }
          merged_any |= uf_.merge_count() != before;
        }
      }
      if (!merged_any) return true;
      result_.stats_.egd_merges = uf_.merge_count();
      Rebuild();
    }
  }

  // Rewrites every conjunct, the head, and the graph metadata through the
  // union-find, collapsing conjuncts that become equal.
  void Rebuild() {
    ++result_.stats_.rebuilds;
    FactIndex old_index = std::move(result_.conjuncts_);
    std::vector<ChaseNodeMeta> old_meta = std::move(result_.meta_);
    result_.conjuncts_ = FactIndex();
    result_.meta_.clear();

    std::vector<uint32_t> remap(old_index.size());
    for (uint32_t i = 0; i < old_index.size(); ++i) {
      Atom atom = Canonicalize(old_index.at(i));
      auto [id, inserted] = result_.conjuncts_.Insert(atom);
      remap[i] = id;
      ChaseNodeMeta meta = std::move(old_meta[i]);
      for (uint32_t& parent : meta.parents) parent = remap[parent];
      if (inserted) {
        result_.meta_.push_back(std::move(meta));
      } else {
        // Two conjuncts collapsed; the earlier generation wins, the later
        // one's derivation becomes cross-arcs.
        result_.meta_[id].level = std::min(result_.meta_[id].level, meta.level);
        RecordCrossArcs(meta.parents, id, meta.rule);
      }
    }

    for (ChaseArc& arc : result_.cross_arcs_) {
      arc.from = remap[arc.from];
      arc.to = remap[arc.to];
    }
    for (Term& t : result_.head_) t = uf_.Find(t);
    std::set<std::pair<Term, Term>> fired;
    for (const auto& [object, attr] : rho5_fired_) {
      fired.insert({uf_.Find(object), uf_.Find(attr)});
    }
    rho5_fired_ = std::move(fired);

    result_.max_level_ = 0;
    for (const ChaseNodeMeta& meta : result_.meta_) {
      result_.max_level_ = std::max(result_.max_level_, meta.level);
    }

    delta_.clear();
    full_recheck_ = true;
  }

  Atom Canonicalize(const Atom& atom) {
    Atom out = atom;
    for (int i = 0; i < atom.arity(); ++i) out.set_arg(i, uf_.Find(atom.arg(i)));
    return out;
  }

  void Seal() { result_.stats_.egd_merges = uf_.merge_count(); }

  // End-of-run observability: annotates the surrounding span with the
  // final shape and folds the stats delta of this Run/Deepen call into
  // the registry. Both are no-ops with no sink installed.
  void Finish(TraceSpan& span, const ChaseStats& before) {
    Seal();  // idempotent; covers early returns that bypass Advance()
    if (span.active()) {
      span.Arg("outcome", ChaseOutcomeName(result_.outcome_))
          .Arg("conjuncts", int64_t(result_.conjuncts_.size()))
          .Arg("max_level", int64_t(result_.max_level_))
          .Arg("level_cap", int64_t(options_.max_level));
    }
    FoldChaseMetrics(before, result_.stats_, result_,
                     /*generic_driver=*/false);
  }

  World& world_;
  ChaseOptions options_;
  SigmaFL sigma_;
  ChaseResult result_;
  TermUnionFind uf_;
  std::vector<Atom> delta_;
  // Governor of the current Run/Deepen call (not owned; see SetGovernor).
  ExecGovernor* governor_ = nullptr;
  MatchOptions match_options_;
  bool preliminary_done_ = false;
  bool full_recheck_ = true;
  std::set<std::pair<uint64_t, RuleId>> cross_seen_;
  // (object, attribute) pairs rho_5 has fired for (oblivious mode).
  std::set<std::pair<Term, Term>> rho5_fired_;
};

void FoldChaseMetrics(const ChaseStats& before, const ChaseStats& after,
                      const ChaseResult& result, bool generic_driver) {
  if (!MetricsRegistry::enabled()) return;
  MetricsRegistry& registry = MetricsRegistry::Get();
  // All twelve rule counters are registered eagerly (not on first firing)
  // so a metrics export always carries the full rho_1..rho_12 series,
  // zeros included.
  static const std::array<Counter*, 13>& rules = *[] {
    auto* out = new std::array<Counter*, 13>{};
    for (int k = 1; k <= 12; ++k) {
      (*out)[size_t(k)] =
          &MetricsRegistry::Get().counter(StrCat("chase.rule.rho", k));
    }
    return out;
  }();
  for (int k = 1; k <= 12; ++k) {
    uint64_t fired =
        after.rule_fired[size_t(k)] - before.rule_fired[size_t(k)];
    if (fired > 0) rules[size_t(k)]->Add(fired);
  }

  static Counter& runs = registry.counter("chase.runs");
  static Counter& generic_runs = registry.counter("generic_chase.runs");
  static Counter& rounds = registry.counter("chase.rounds");
  static Counter& applications = registry.counter("chase.tgd_applications");
  static Counter& nulls = registry.counter("chase.fresh_nulls");
  static Counter& merges = registry.counter("chase.egd_merges");
  static Counter& rebuilds = registry.counter("chase.rebuilds");
  (generic_driver ? generic_runs : runs).Add(1);
  if (after.rounds > before.rounds) rounds.Add(after.rounds - before.rounds);
  if (after.tgd_applications > before.tgd_applications) {
    applications.Add(after.tgd_applications - before.tgd_applications);
  }
  if (after.fresh_nulls > before.fresh_nulls) {
    nulls.Add(after.fresh_nulls - before.fresh_nulls);
  }
  if (after.egd_merges > before.egd_merges) {
    merges.Add(after.egd_merges - before.egd_merges);
  }
  if (after.rebuilds > before.rebuilds) {
    rebuilds.Add(after.rebuilds - before.rebuilds);
  }

  static Histogram& level = registry.histogram("chase.max_level");
  static Histogram& conjuncts = registry.histogram("chase.conjuncts");
  level.Record(uint64_t(std::max(result.max_level(), 0)));
  conjuncts.Record(result.size());
}

uint32_t ChaseResult::CountUpToLevel(int level) const {
  uint32_t count = 0;
  for (const ChaseNodeMeta& meta : meta_) {
    if (meta.level <= level) ++count;
  }
  return count;
}

std::vector<ChaseArc> ChaseResult::Arcs() const {
  std::vector<ChaseArc> arcs;
  for (uint32_t id = 0; id < meta_.size(); ++id) {
    for (uint32_t parent : meta_[id].parents) {
      arcs.push_back(ChaseArc{parent, id, meta_[id].rule, /*cross=*/false});
    }
  }
  arcs.insert(arcs.end(), cross_arcs_.begin(), cross_arcs_.end());
  return arcs;
}

std::string ChaseResult::DebugString(const World& world) const {
  std::string out = StrCat("chase: ", ChaseOutcomeName(outcome_), ", ",
                           size(), " conjuncts, max level ", max_level_, "\n");
  for (uint32_t id = 0; id < size(); ++id) {
    const ChaseNodeMeta& m = meta_[id];
    out += StrCat("  [", id, "] L", m.level, " ",
                  conjuncts_.at(id).ToString(world));
    if (m.rule != kRho0) {
      out += StrCat("  (rho_", int(m.rule), " from");
      for (uint32_t parent : m.parents) out += StrCat(" ", parent);
      out += ")";
    }
    out += '\n';
  }
  return out;
}

ChaseResult ChaseQuery(World& world, const ConjunctiveQuery& query,
                       const ChaseOptions& options) {
  ChaseEngine engine(world, options);
  engine.Run(query);
  return engine.TakeResult();
}

ChaseResult ChaseLevelZero(World& world, const ConjunctiveQuery& query,
                           const ChaseOptions& options) {
  ChaseOptions level_zero = options;
  level_zero.max_level = 0;
  ChaseEngine engine(world, level_zero);
  engine.Run(query);
  return engine.TakeResult();
}

// ---- ResumableChase ---------------------------------------------------------

ResumableChase::ResumableChase(World& world, const ConjunctiveQuery& query,
                               const ChaseOptions& options)
    : world_(&world), query_(query), options_(options) {}

ResumableChase::~ResumableChase() = default;
ResumableChase::ResumableChase(ResumableChase&&) noexcept = default;
ResumableChase& ResumableChase::operator=(ResumableChase&&) noexcept = default;

const ChaseResult& ResumableChase::EnsureLevel(int level,
                                               ExecGovernor* governor) {
  if (!started_) {
    FLOQ_CHECK(!frozen_);
    ChaseOptions run_options = options_;
    run_options.max_level = level;
    engine_ = std::make_unique<ChaseEngine>(*world_, run_options);
    engine_->Run(query_, governor);
    started_ = true;
    return engine_->result();
  }
  ChaseOutcome outcome = engine_->result().outcome();
  if (outcome != ChaseOutcome::kInterrupted &&
      (level <= engine_->level_cap() ||
       outcome != ChaseOutcome::kLevelCapped)) {
    // Already materialized deep enough, or nothing deeper exists
    // (completed) or can be computed (failed / budget): const read. An
    // interrupted chase never takes this path — its materialization is
    // incomplete even at the current cap, so it always resumes.
    return engine_->result();
  }
  FLOQ_CHECK(!frozen_);  // immutability contract: no deepening when shared
  engine_->Deepen(level, governor);
  ++deepen_count_;
  return engine_->result();
}

const ChaseResult& ResumableChase::result() const {
  FLOQ_CHECK(started_);
  return engine_->result();
}

int ResumableChase::level_cap() const {
  FLOQ_CHECK(started_);
  return engine_->level_cap();
}

}  // namespace floq
