#include "chase/dependencies.h"

#include <cctype>
#include <map>
#include <set>
#include <tuple>
#include <unordered_set>

#include "query/parser.h"
#include "term/substitution.h"
#include "util/strings.h"

namespace floq {

std::vector<Term> Tgd::ExistentialVariables() const {
  std::unordered_set<uint32_t> body_vars;
  for (const Atom& atom : body) {
    for (Term t : atom) {
      if (t.IsVariable()) body_vars.insert(t.raw());
    }
  }
  std::vector<Term> existential;
  std::unordered_set<uint32_t> seen;
  for (Term t : head) {
    if (t.IsVariable() && body_vars.count(t.raw()) == 0 &&
        seen.insert(t.raw()).second) {
      existential.push_back(t);
    }
  }
  return existential;
}

namespace {

// Splits a dependency program into statements at '.' terminators,
// respecting single-quoted strings and the decimal-number ambiguity
// (digit '.' digit stays inside a statement).
std::vector<std::string> SplitStatements(std::string_view text) {
  std::vector<std::string> statements;
  std::string current;
  bool in_quote = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '%' && !in_quote) {
      while (i < text.size() && text[i] != '\n') ++i;
      current += ' ';
      continue;
    }
    if (c == '\'') in_quote = !in_quote;
    if (c == '.' && !in_quote) {
      bool digit_before = !current.empty() &&
                          std::isdigit(static_cast<unsigned char>(
                              current.back()));
      bool digit_after = i + 1 < text.size() &&
                         std::isdigit(static_cast<unsigned char>(text[i + 1]));
      if (!(digit_before && digit_after)) {
        if (!StripWhitespace(current).empty()) {
          statements.push_back(current);
        }
        current.clear();
        continue;
      }
    }
    current += c;
  }
  if (!StripWhitespace(current).empty()) statements.push_back(current);
  return statements;
}

// Recognizes "X = Y" heads. Returns true and the two identifiers if the
// text before ":-" is exactly that shape.
bool ParseEqualityHead(std::string_view head_text, std::string& left,
                       std::string& right) {
  size_t eq = head_text.find('=');
  if (eq == std::string_view::npos) return false;
  std::string_view lhs = StripWhitespace(head_text.substr(0, eq));
  std::string_view rhs = StripWhitespace(head_text.substr(eq + 1));
  auto is_identifier = [](std::string_view word) {
    if (word.empty()) return false;
    for (char c : word) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
        return false;
      }
    }
    return true;
  };
  if (!is_identifier(lhs) || !is_identifier(rhs)) return false;
  left = std::string(lhs);
  right = std::string(rhs);
  return true;
}

Term TermFromIdentifier(World& world, const std::string& name) {
  char first = name[0];
  if (std::isupper(static_cast<unsigned char>(first)) || first == '_') {
    return world.MakeVariable(name);
  }
  return world.MakeConstant(name);
}

}  // namespace

namespace {

// Dependency variables must never coincide with variables of chased
// queries (which act as values in the chase); rename them to reserved
// variables no parser can produce.
Substitution ReserveVariables(World& world, const std::vector<Atom>& atoms) {
  Substitution renaming;
  for (const Atom& atom : atoms) {
    for (Term t : atom) {
      if (t.IsVariable() && !renaming.Binds(t)) {
        renaming.Bind(t, world.MakeReservedVariable());
      }
    }
  }
  return renaming;
}

}  // namespace

Result<DependencySet> ParseDependencies(World& world, std::string_view text) {
  DependencySet dependencies;
  int counter = 0;
  for (const std::string& statement : SplitStatements(text)) {
    ++counter;
    size_t implies = statement.find(":-");
    if (implies == std::string::npos) {
      return InvalidArgumentError(
          StrCat("dependency ", counter, " has no ':-': ",
                 std::string(StripWhitespace(statement))));
    }
    std::string_view head_text =
        StripWhitespace(std::string_view(statement).substr(0, implies));
    std::string body_text = statement.substr(implies + 2);

    std::string left_name, right_name;
    if (ParseEqualityHead(head_text, left_name, right_name)) {
      Result<std::vector<Atom>> body = ParseAtoms(world, body_text);
      if (!body.ok()) return body.status();
      Egd egd;
      egd.body = std::move(body).value();
      egd.left = TermFromIdentifier(world, left_name);
      egd.right = TermFromIdentifier(world, right_name);
      egd.name = StrCat("egd", dependencies.egds.size() + 1);
      // Equated variables must occur in the body.
      for (Term side : {egd.left, egd.right}) {
        if (!side.IsVariable()) continue;
        bool found = false;
        for (const Atom& atom : egd.body) {
          for (Term t : atom) found |= t == side;
        }
        if (!found) {
          return InvalidArgumentError(
              StrCat("EGD ", counter, ": equated variable ",
                     world.NameOf(side), " does not occur in the body"));
        }
      }
      Substitution reserve = ReserveVariables(world, egd.body);
      egd.body = reserve.Apply(egd.body);
      egd.left = reserve.Apply(egd.left);
      egd.right = reserve.Apply(egd.right);
      dependencies.egds.push_back(std::move(egd));
      continue;
    }

    Result<ConjunctiveQuery> rule =
        ParseQueryAllowUnsafeHead(world, statement + ".");
    if (!rule.ok()) return rule.status();
    PredicateId pred = world.predicates().Intern(rule->name(),
                                                 int(rule->head().size()));
    if (pred == kInvalidPredicate) {
      return InvalidArgumentError(
          StrCat("dependency ", counter, ": head predicate ", rule->name(),
                 "/", rule->head().size(), " conflicts with another arity"));
    }
    Tgd tgd;
    tgd.head = Atom(pred, rule->head());
    tgd.body = rule->body();
    if (tgd.body.empty()) {
      return InvalidArgumentError(
          StrCat("dependency ", counter, " has an empty body"));
    }
    tgd.name = StrCat("tgd", dependencies.tgds.size() + 1);
    {
      std::vector<Atom> all = tgd.body;
      all.push_back(tgd.head);
      Substitution reserve = ReserveVariables(world, all);
      tgd.body = reserve.Apply(tgd.body);
      tgd.head = reserve.Apply(tgd.head);
    }
    dependencies.tgds.push_back(std::move(tgd));
  }
  return dependencies;
}

DependencySet MakeSigmaFLDependencies(World& world) {
  // Written exactly as Section 2 of the paper lists Sigma_FL.
  Result<DependencySet> parsed = ParseDependencies(world, R"(
    member(V, T) :- type(O, A, T), data(O, A, V).
    sub(C1, C2) :- sub(C1, C3), sub(C3, C2).
    member(O, C1) :- member(O, C), sub(C, C1).
    V = W :- data(O, A, V), data(O, A, W), funct(A, O).
    data(O, A, V) :- mandatory(A, O).
    type(O, A, T) :- member(O, C), type(C, A, T).
    type(C, A, T) :- sub(C, C1), type(C1, A, T).
    type(C, A, T) :- type(C, A, T1), sub(T1, T).
    mandatory(A, C) :- sub(C, C1), mandatory(A, C1).
    mandatory(A, O) :- member(O, C), mandatory(A, C).
    funct(A, C) :- sub(C, C1), funct(A, C1).
    funct(A, O) :- member(O, C), funct(A, C).
  )");
  FLOQ_CHECK(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

std::string DependencyPosition::ToString(const World& world) const {
  return StrCat(world.predicates().NameOf(pred), "[", index, "]");
}

std::string DependencyEdge::ToString(const DependencySet& dependencies,
                                     const World& world) const {
  std::string label =
      tgd_index >= 0 && size_t(tgd_index) < dependencies.tgds.size()
          ? dependencies.tgds[tgd_index].name
          : "?";
  return StrCat(from.ToString(world), " --", label, special ? "*" : "",
                "--> ", to.ToString(world));
}

WeakAcyclicityResult AnalyzeWeakAcyclicity(const DependencySet& dependencies,
                                           const World& world) {
  (void)world;
  WeakAcyclicityResult result;

  // Nodes: (predicate, position) pairs packed into one integer.
  auto key = [](const DependencyPosition& p) {
    return (uint64_t(p.pred) << 8) | uint64_t(p.index);
  };

  // Collect labeled edges in deterministic (TGD, body atom, position)
  // order, deduplicating repeats (the first generating TGD labels the
  // edge).
  std::set<std::tuple<uint64_t, uint64_t, bool>> seen;
  for (size_t ti = 0; ti < dependencies.tgds.size(); ++ti) {
    const Tgd& tgd = dependencies.tgds[ti];
    std::vector<Term> existential = tgd.ExistentialVariables();
    auto is_existential = [&](Term t) {
      for (Term e : existential) {
        if (e == t) return true;
      }
      return false;
    };
    for (const Atom& body_atom : tgd.body) {
      for (int i = 0; i < body_atom.arity(); ++i) {
        Term x = body_atom.arg(i);
        if (!x.IsVariable()) continue;
        DependencyPosition from{body_atom.predicate(), i};
        for (int j = 0; j < tgd.head.arity(); ++j) {
          Term h = tgd.head.arg(j);
          DependencyPosition to{tgd.head.predicate(), j};
          bool special;
          if (h == x) {
            special = false;  // x propagates
          } else if (h.IsVariable() && is_existential(h)) {
            special = true;  // x feeds an invented value
          } else {
            continue;
          }
          if (seen.insert({key(from), key(to), special}).second) {
            result.edges.push_back(
                DependencyEdge{from, to, special, int(ti)});
          }
        }
      }
    }
  }

  std::map<uint64_t, std::vector<size_t>> adjacency;
  for (size_t e = 0; e < result.edges.size(); ++e) {
    adjacency[key(result.edges[e].from)].push_back(e);
  }

  // Weak acyclicity fails iff some special edge (u, v) closes a cycle,
  // i.e. v reaches u over (normal ∪ special). BFS with incoming-edge
  // tracking reconstructs the v ->* u path for the witness.
  for (size_t se = 0; se < result.edges.size(); ++se) {
    if (!result.edges[se].special) continue;
    uint64_t start = key(result.edges[se].to);
    uint64_t goal = key(result.edges[se].from);

    if (start == goal) {  // special self-loop: a cycle of length one
      result.weakly_acyclic = false;
      result.witness = {result.edges[se]};
      return result;
    }

    std::map<uint64_t, size_t> incoming;  // node -> edge that reached it
    std::vector<uint64_t> frontier = {start};
    std::set<uint64_t> visited = {start};
    bool found = false;
    while (!frontier.empty() && !found) {
      std::vector<uint64_t> next_frontier;
      for (uint64_t node : frontier) {
        auto it = adjacency.find(node);
        if (it == adjacency.end()) continue;
        for (size_t e : it->second) {
          uint64_t to = key(result.edges[e].to);
          if (!visited.insert(to).second) continue;
          incoming[to] = e;
          if (to == goal) {
            found = true;
            break;
          }
          next_frontier.push_back(to);
        }
        if (found) break;
      }
      frontier = std::move(next_frontier);
    }
    if (!found) continue;

    // Witness: the special edge u -> v, then the path v ->* u.
    std::vector<DependencyEdge> path;
    for (uint64_t node = goal; node != start;) {
      size_t e = incoming.at(node);
      path.push_back(result.edges[e]);
      node = key(result.edges[e].from);
    }
    result.weakly_acyclic = false;
    result.witness.push_back(result.edges[se]);
    result.witness.insert(result.witness.end(), path.rbegin(), path.rend());
    return result;
  }
  return result;
}

bool IsWeaklyAcyclic(const DependencySet& dependencies, const World& world) {
  return AnalyzeWeakAcyclicity(dependencies, world).weakly_acyclic;
}

}  // namespace floq
