#include "chase/generic_chase.h"

#include <algorithm>
#include <unordered_set>

#include "chase/term_union_find.h"
#include "datalog/evaluator.h"
#include "datalog/match.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace floq {

namespace {

// A TGD application candidate: the head as instantiated by the match
// (existential variables still variables), parents, and target level.
struct PendingGenericTgd {
  size_t tgd_index;
  Atom partial_head;
  std::vector<uint32_t> parents;
  int level;
};

}  // namespace

class GenericChaseEngine {
 public:
  GenericChaseEngine(World& world, const DependencySet& dependencies,
                     const ChaseOptions& options)
      : world_(world), dependencies_(dependencies), options_(options) {
    match_options_.governor = options_.governor;
  }

  ChaseResult Run(const std::vector<Atom>& initial,
                  const std::vector<Term>& head) {
    TraceSpan span("generic_chase.run");
    for (const Atom& atom : initial) {
      if (!InsertNode(atom, 0, kRho0, {})) return Finish(span);
    }
    result_.head_ = head;

    bool saw_beyond_cap = false;
    for (;;) {
      if (Interrupted()) return Finish(span);
      if (!EgdFixpoint()) return Finish(span);

      DeltaWindow window = TakeDelta();
      std::vector<PendingGenericTgd> pending = Collect(window);

      std::vector<PendingGenericTgd> now;
      for (PendingGenericTgd& p : pending) {
        if (p.level <= options_.max_level) {
          now.push_back(std::move(p));
        } else {
          saw_beyond_cap = true;
        }
      }
      if (now.empty()) {
        // A trip during collection truncates the pending set; re-check
        // before declaring quiescence.
        if (Interrupted()) return Finish(span);
        result_.outcome_ = saw_beyond_cap ? ChaseOutcome::kLevelCapped
                                          : ChaseOutcome::kCompleted;
        return Finish(span);
      }
      for (const PendingGenericTgd& p : now) {
        if (!Apply(p)) return Finish(span);
      }
      ++result_.stats_.rounds;
    }
  }

 private:
  struct DeltaWindow {
    bool full = false;
    std::vector<Atom> atoms;
  };

  FactIndex& index() { return result_.conjuncts_; }

  DeltaWindow TakeDelta() {
    DeltaWindow window;
    window.full = full_recheck_ || !options_.use_delta_windows;
    if (!window.full) window.atoms = std::move(delta_);
    delta_.clear();
    full_recheck_ = false;
    return window;
  }

  // True when the governor has tripped; latches kInterrupted. This engine
  // is one-shot (no resume), so no rescan bookkeeping is needed.
  bool Interrupted() {
    if (options_.governor == nullptr || options_.governor->CheckNow()) {
      return false;
    }
    result_.outcome_ = ChaseOutcome::kInterrupted;
    return true;
  }

  bool InsertNode(const Atom& atom, int level, RuleId rule,
                  std::vector<uint32_t> parents) {
    if (options_.governor != nullptr && !options_.governor->Tick()) {
      result_.outcome_ = ChaseOutcome::kInterrupted;
      return false;
    }
    auto [id, inserted] = index().Insert(atom);
    if (!inserted) return true;
    FLOQ_CHECK_EQ(id, result_.meta_.size());
    result_.meta_.push_back(ChaseNodeMeta{level, rule, std::move(parents)});
    result_.max_level_ = std::max(result_.max_level_, level);
    delta_.push_back(atom);
    if (rule != kRho0) ++result_.stats_.tgd_applications;
    if (index().size() > options_.max_atoms) {
      result_.outcome_ = ChaseOutcome::kBudgetExceeded;
      return false;
    }
    return true;
  }

  // True iff the (restricted) TGD instance is satisfied: some extension of
  // the match maps the head into the instance. Universal positions of
  // `partial_head` are fixed terms (possibly variables-as-values);
  // existential positions — where the atom still carries the TGD's own
  // existential variable — are wildcards that must only repeat
  // consistently. A hand-rolled scan is used instead of the matcher
  // because value variables must not be treated as bindable.
  bool HeadSatisfied(const Tgd& tgd, const Atom& partial_head) {
    std::vector<Term> existential = tgd.ExistentialVariables();
    auto is_existential = [&](Term t) {
      for (Term e : existential) {
        if (e == t) return true;
      }
      return false;
    };

    PostingView candidates = index().WithPredicate(partial_head.predicate());
    for (int i = 0; i < partial_head.arity(); ++i) {
      Term t = partial_head.arg(i);
      if (is_existential(t)) continue;
      const PostingView ids =
          index().WithArgument(partial_head.predicate(), i, t);
      if (ids.size() < candidates.size()) candidates = ids;
    }
    for (uint32_t id : candidates) {
      const Atom& fact = index().at(id);
      Substitution extension;
      bool matches = true;
      for (int i = 0; i < partial_head.arity() && matches; ++i) {
        Term t = partial_head.arg(i);
        if (is_existential(t)) {
          matches = extension.TryBind(t, fact.arg(i));
        } else {
          matches = t == fact.arg(i);
        }
      }
      if (matches) return true;
    }
    return false;
  }

  std::vector<PendingGenericTgd> Collect(const DeltaWindow& window) {
    std::vector<PendingGenericTgd> pending;
    std::unordered_set<Atom, AtomHash> pending_heads;

    auto consider = [&](size_t tgd_index, const Substitution& match) {
      const Tgd& tgd = dependencies_.tgds[tgd_index];
      Atom partial_head = match.Apply(tgd.head);
      if (HeadSatisfied(tgd, partial_head)) return;
      if (!pending_heads.insert(partial_head).second) return;
      std::vector<uint32_t> parents;
      parents.reserve(tgd.body.size());
      int level = 0;
      for (const Atom& body_atom : tgd.body) {
        uint32_t id = index().IdOf(match.Apply(body_atom));
        FLOQ_CHECK_NE(id, kInvalidFactId);
        parents.push_back(id);
        level = std::max(level, result_.meta_[id].level);
      }
      pending.push_back(PendingGenericTgd{tgd_index, partial_head,
                                          std::move(parents), level + 1});
    };

    for (size_t t = 0; t < dependencies_.tgds.size(); ++t) {
      const Tgd& tgd = dependencies_.tgds[t];
      if (window.full) {
        MatchConjunction(tgd.body, index(), Substitution(),
                         [&](const Substitution& match) {
                           consider(t, match);
                           return true;
                         },
                         /*stats=*/nullptr, match_options_);
        continue;
      }
      for (size_t pivot = 0; pivot < tgd.body.size(); ++pivot) {
        std::vector<Atom> rest;
        for (size_t i = 0; i < tgd.body.size(); ++i) {
          if (i != pivot) rest.push_back(tgd.body[i]);
        }
        for (const Atom& fact : window.atoms) {
          Substitution subst;
          if (!TryUnifyAtom(tgd.body[pivot], fact, subst)) continue;
          MatchConjunction(rest, index(), subst,
                           [&](const Substitution& match) {
                             consider(t, match);
                             return true;
                           },
                           /*stats=*/nullptr, match_options_);
        }
      }
    }
    return pending;
  }

  bool Apply(const PendingGenericTgd& p) {
    const Tgd& tgd = dependencies_.tgds[p.tgd_index];
    // Another application this batch may have satisfied the instance.
    if (HeadSatisfied(tgd, p.partial_head)) return true;
    std::vector<Term> existential = tgd.ExistentialVariables();
    Atom head = p.partial_head;
    bool invented = false;
    for (Term var : existential) {
      Term fresh = world_.MakeFreshNull();
      bool used = false;
      for (int j = 0; j < head.arity(); ++j) {
        if (head.arg(j) == var) {
          head.set_arg(j, fresh);
          used = true;
        }
      }
      invented |= used;
    }
    if (invented) ++result_.stats_.fresh_nulls;
    return InsertNode(head, p.level, RuleId(1000 + int(p.tgd_index)),
                      p.parents);
  }

  // EGDs to exhaustion; merges rewrite the instance through the
  // union-find. Returns false on failure (two distinct constants).
  bool EgdFixpoint() {
    for (;;) {
      bool merged_any = false;
      for (const Egd& egd : dependencies_.egds) {
        bool ok = true;
        MatchConjunction(egd.body, index(), Substitution(),
                         [&](const Substitution& match) {
                           Term left = uf_.Find(match.Apply(egd.left));
                           Term right = uf_.Find(match.Apply(egd.right));
                           if (left == right) return true;
                           Status merged = uf_.Merge(left, right, world_);
                           if (!merged.ok()) {
                             ok = false;
                             return false;
                           }
                           merged_any = true;
                           return true;
                         },
                         /*stats=*/nullptr, match_options_);
        if (!ok) {
          result_.outcome_ = ChaseOutcome::kFailed;
          return false;
        }
      }
      if (!merged_any) return true;
      result_.stats_.egd_merges = uf_.merge_count();
      Rebuild();
    }
  }

  void Rebuild() {
    ++result_.stats_.rebuilds;
    FactIndex old_index = std::move(result_.conjuncts_);
    std::vector<ChaseNodeMeta> old_meta = std::move(result_.meta_);
    result_.conjuncts_ = FactIndex();
    result_.meta_.clear();

    std::vector<uint32_t> remap(old_index.size());
    for (uint32_t i = 0; i < old_index.size(); ++i) {
      Atom atom = old_index.at(i);
      for (int j = 0; j < atom.arity(); ++j) {
        atom.set_arg(j, uf_.Find(atom.arg(j)));
      }
      auto [id, inserted] = result_.conjuncts_.Insert(atom);
      remap[i] = id;
      ChaseNodeMeta meta = std::move(old_meta[i]);
      for (uint32_t& parent : meta.parents) parent = remap[parent];
      if (inserted) {
        result_.meta_.push_back(std::move(meta));
      } else {
        result_.meta_[id].level = std::min(result_.meta_[id].level, meta.level);
      }
    }
    for (Term& t : result_.head_) t = uf_.Find(t);
    result_.max_level_ = 0;
    for (const ChaseNodeMeta& meta : result_.meta_) {
      result_.max_level_ = std::max(result_.max_level_, meta.level);
    }
    delta_.clear();
    full_recheck_ = true;
  }

  ChaseResult Finish(TraceSpan& span) {
    result_.stats_.egd_merges = uf_.merge_count();
    if (span.active()) {
      span.Arg("outcome", ChaseOutcomeName(result_.outcome_))
          .Arg("conjuncts", int64_t(result_.conjuncts_.size()))
          .Arg("max_level", int64_t(result_.max_level_))
          .Arg("tgds", int64_t(dependencies_.tgds.size()));
    }
    // One-shot engine: stats start from zero, so the "before" snapshot is
    // the default-constructed ChaseStats.
    FoldChaseMetrics(ChaseStats{}, result_.stats_, result_,
                     /*generic_driver=*/true);
    return std::move(result_);
  }

  World& world_;
  const DependencySet& dependencies_;
  ChaseOptions options_;
  MatchOptions match_options_;
  ChaseResult result_;
  TermUnionFind uf_;
  std::vector<Atom> delta_;
  bool full_recheck_ = true;
};

ChaseResult GenericChase(World& world, const ConjunctiveQuery& query,
                         const DependencySet& dependencies,
                         const ChaseOptions& options) {
  return GenericChaseEngine(world, dependencies, options)
      .Run(query.body(), query.head());
}

ChaseResult GenericChaseFacts(World& world, const std::vector<Atom>& facts,
                              const DependencySet& dependencies,
                              const ChaseOptions& options) {
  return GenericChaseEngine(world, dependencies, options).Run(facts, {});
}

}  // namespace floq
