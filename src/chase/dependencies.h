#ifndef FLOQ_CHASE_DEPENDENCIES_H_
#define FLOQ_CHASE_DEPENDENCIES_H_

#include <string>
#include <string_view>
#include <vector>

#include "term/atom.h"
#include "term/world.h"
#include "util/status.h"

// User-supplied dependency sets: tuple-generating dependencies (possibly
// existential) and equality-generating dependencies, over any predicates.
// This generalizes Sigma_FL in the direction the paper's conclusion calls
// out ("finding a general class of queries ... for which our proof
// techniques still apply"): the generic chase (generic_chase.h) runs any
// such set, and weak acyclicity (Fagin et al.) certifies termination,
// making the Theorem-4 containment test complete for that class.
//
// Surface syntax (ParseDependencies): one dependency per statement,
// written rule-style like the paper writes Sigma_FL:
//
//   member(V, T) :- type(O, A, T), data(O, A, V).     % plain TGD
//   data(O, A, V) :- mandatory(A, O).                  % existential TGD
//                                                      %   (V not in body)
//   V = W :- data(O, A, V), data(O, A, W), funct(A, O).% EGD

namespace floq {

/// A single-head TGD. Head variables missing from the body are
/// existentially quantified: the chase invents a fresh null per variable
/// per application.
struct Tgd {
  Atom head;
  std::vector<Atom> body;
  std::string name;  // for diagnostics; defaults to "tgd<k>"

  /// Head variables that do not occur in the body.
  std::vector<Term> ExistentialVariables() const;
};

/// An EGD: body matches force left = right.
struct Egd {
  std::vector<Atom> body;
  Term left;
  Term right;
  std::string name;
};

struct DependencySet {
  std::vector<Tgd> tgds;
  std::vector<Egd> egds;

  bool empty() const { return tgds.empty() && egds.empty(); }
  size_t size() const { return tgds.size() + egds.size(); }
};

/// Parses a dependency program (syntax above). Every EGD's equated sides
/// must be variables occurring in its body.
Result<DependencySet> ParseDependencies(World& world, std::string_view text);

/// Sigma_FL expressed as a user dependency set (for cross-checking the
/// generic chase against the specialized engine).
DependencySet MakeSigmaFLDependencies(World& world);

/// A node of the Fagin-et-al. dependency graph: a predicate position.
struct DependencyPosition {
  PredicateId pred = kInvalidPredicate;
  int index = 0;

  /// "data[2]".
  std::string ToString(const World& world) const;

  friend bool operator==(const DependencyPosition& a,
                         const DependencyPosition& b) {
    return a.pred == b.pred && a.index == b.index;
  }
};

/// A labeled edge of the dependency graph: some TGD copies (normal) or
/// feeds an invented value into (special) the target position from the
/// source position.
struct DependencyEdge {
  DependencyPosition from;
  DependencyPosition to;
  bool special = false;
  int tgd_index = -1;  // index into DependencySet::tgds

  /// "data[2] --tgd5*--> member[0]" ('*' marks a special edge).
  std::string ToString(const DependencySet& dependencies,
                       const World& world) const;
};

/// Weak acyclicity (Fagin, Kolaitis, Miller, Popa 2003) as a diagnostic:
/// the full labeled dependency graph plus, when the set is not weakly
/// acyclic, a witness cycle through at least one special edge
/// (witness[i].to == witness[i+1].from, and the last edge wraps to the
/// first). EGDs do not affect the test.
struct WeakAcyclicityResult {
  bool weakly_acyclic = true;
  std::vector<DependencyEdge> edges;
  std::vector<DependencyEdge> witness;
};

WeakAcyclicityResult AnalyzeWeakAcyclicity(const DependencySet& dependencies,
                                           const World& world);

/// Weak acyclicity verdict only: the chase of any instance under a weakly
/// acyclic TGD set terminates.
bool IsWeaklyAcyclic(const DependencySet& dependencies, const World& world);

}  // namespace floq

#endif  // FLOQ_CHASE_DEPENDENCIES_H_
