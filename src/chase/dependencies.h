#ifndef FLOQ_CHASE_DEPENDENCIES_H_
#define FLOQ_CHASE_DEPENDENCIES_H_

#include <string>
#include <string_view>
#include <vector>

#include "term/atom.h"
#include "term/world.h"
#include "util/status.h"

// User-supplied dependency sets: tuple-generating dependencies (possibly
// existential) and equality-generating dependencies, over any predicates.
// This generalizes Sigma_FL in the direction the paper's conclusion calls
// out ("finding a general class of queries ... for which our proof
// techniques still apply"): the generic chase (generic_chase.h) runs any
// such set, and weak acyclicity (Fagin et al.) certifies termination,
// making the Theorem-4 containment test complete for that class.
//
// Surface syntax (ParseDependencies): one dependency per statement,
// written rule-style like the paper writes Sigma_FL:
//
//   member(V, T) :- type(O, A, T), data(O, A, V).     % plain TGD
//   data(O, A, V) :- mandatory(A, O).                  % existential TGD
//                                                      %   (V not in body)
//   V = W :- data(O, A, V), data(O, A, W), funct(A, O).% EGD

namespace floq {

/// A single-head TGD. Head variables missing from the body are
/// existentially quantified: the chase invents a fresh null per variable
/// per application.
struct Tgd {
  Atom head;
  std::vector<Atom> body;
  std::string name;  // for diagnostics; defaults to "tgd<k>"

  /// Head variables that do not occur in the body.
  std::vector<Term> ExistentialVariables() const;
};

/// An EGD: body matches force left = right.
struct Egd {
  std::vector<Atom> body;
  Term left;
  Term right;
  std::string name;
};

struct DependencySet {
  std::vector<Tgd> tgds;
  std::vector<Egd> egds;

  bool empty() const { return tgds.empty() && egds.empty(); }
  size_t size() const { return tgds.size() + egds.size(); }
};

/// Parses a dependency program (syntax above). Every EGD's equated sides
/// must be variables occurring in its body.
Result<DependencySet> ParseDependencies(World& world, std::string_view text);

/// Sigma_FL expressed as a user dependency set (for cross-checking the
/// generic chase against the specialized engine).
DependencySet MakeSigmaFLDependencies(World& world);

/// Weak acyclicity (Fagin, Kolaitis, Miller, Popa 2003): the chase of any
/// instance under a weakly acyclic TGD set terminates. Builds the
/// (predicate, position) dependency graph; returns false iff some cycle
/// passes through a "special" (existential) edge. EGDs do not affect the
/// test.
bool IsWeaklyAcyclic(const DependencySet& dependencies, const World& world);

}  // namespace floq

#endif  // FLOQ_CHASE_DEPENDENCIES_H_
