#ifndef FLOQ_CHASE_GRAPH_DOT_H_
#define FLOQ_CHASE_GRAPH_DOT_H_

#include <string>

#include "chase/chase.h"
#include "term/world.h"

// Graphviz export of the chase graph G(q) (Definition 3), in the layout
// style of the paper's Figure 1: conjuncts ranked by level, arcs labeled
// with the generating rule, cross-arcs dashed, primary arcs bold.

namespace floq {

struct DotOptions {
  /// Only levels <= this are drawn (the chase may be a long chain).
  int max_level = 12;
  /// Title rendered above the graph.
  std::string title = "chase graph";
};

/// Renders the chase graph as a DOT digraph. Feed to `dot -Tsvg`.
std::string ChaseGraphToDot(const ChaseResult& chase, const World& world,
                            const DotOptions& options = {});

}  // namespace floq

#endif  // FLOQ_CHASE_GRAPH_DOT_H_
