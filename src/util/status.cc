#include "util/status.h"

namespace floq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}

Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}

Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}

Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}

Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}

Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace floq
