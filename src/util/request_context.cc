#include "util/request_context.h"

namespace floq {

namespace {

thread_local const RequestContext* g_current_request = nullptr;

}  // namespace

ScopedRequestContext::ScopedRequestContext(const RequestContext* context)
    : previous_(g_current_request) {
  g_current_request = context;
}

ScopedRequestContext::~ScopedRequestContext() {
  g_current_request = previous_;
}

const RequestContext* CurrentRequestContext() { return g_current_request; }

}  // namespace floq
