#ifndef FLOQ_UTIL_RNG_H_
#define FLOQ_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

// Deterministic pseudo-random generation for workload generators and
// property tests. All floq experiments are seeded so that every benchmark
// table is exactly reproducible; we deliberately avoid std::mt19937's
// platform-sized quirks and keep the generator self-contained.

namespace floq {

/// SplitMix64: used to expand a user seed into generator state.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 256-bit state.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  /// Uniform over the full 64-bit range.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Requires bound > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t Below(uint64_t bound) {
    FLOQ_CHECK_GT(bound, 0u);
    const uint64_t threshold = -bound % bound;  // 2^64 mod bound
    for (;;) {
      uint64_t sample = Next();
      if (sample >= threshold) return sample % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Between(int64_t lo, int64_t hi) {
    FLOQ_CHECK_LE(lo, hi);
    return lo + int64_t(Below(uint64_t(hi - lo) + 1));
  }

  /// Bernoulli trial with probability p in [0, 1].
  bool Chance(double p) {
    return double(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace floq

#endif  // FLOQ_UTIL_RNG_H_
