#ifndef FLOQ_UTIL_STATUS_H_
#define FLOQ_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

// Error handling for the floq library. The library is exception-free:
// operations that can fail on user input (parsing, malformed queries,
// resource budgets) return floq::Status or floq::Result<T>.

namespace floq {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (parse errors, arity mismatches)
  kNotFound,          // lookup misses (unknown predicate, unknown symbol)
  kFailedPrecondition,// operation not valid in the current state
  kResourceExhausted, // a configured budget (atoms, steps, levels) was hit
  kDeadlineExceeded,  // a wall-clock deadline passed before completion
  kCancelled,         // a CancellationToken stopped the operation
  kInternal,          // invariant violation surfaced as a recoverable error
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    FLOQ_CHECK(code != StatusCode::kOk) << "use Status() for OK";
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DeadlineExceededError(std::string message);
Status CancelledError(std::string message);
Status InternalError(std::string message);

/// Holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: `return InvalidArgumentError(...);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    FLOQ_CHECK(!status_.ok()) << "Result(Status) requires an error status";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  /// Requires ok(). Accessors mirror absl::StatusOr.
  const T& value() const& {
    FLOQ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    FLOQ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    FLOQ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace floq

/// Propagates an error Status from an expression producing a Status.
#define FLOQ_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::floq::Status floq_status_ = (expr);           \
    if (!floq_status_.ok()) return floq_status_;    \
  } while (false)

#endif  // FLOQ_UTIL_STATUS_H_
