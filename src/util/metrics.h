#ifndef FLOQ_UTIL_METRICS_H_
#define FLOQ_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

// Process-wide metrics registry (DESIGN.md §12): named monotonic counters
// and log-scale latency histograms, collected from the chase drivers, the
// homomorphism matchers, the batch engine, and the resource governor.
//
// Design constraints, in priority order:
//
//   1. Zero overhead when off. Collection is gated by one process-wide
//      flag; every instrumentation site is `if (MetricsRegistry::enabled())`
//      around the update, so the disabled path costs one relaxed atomic
//      load and a predictable branch. Verified by
//      bench_observability_overhead (EXPERIMENTS.md E13).
//   2. No locks on the hot path. Counters and histograms are sharded into
//      cache-line-sized slots; each thread picks a slot once (round-robin
//      over its lifetime) and updates it with plain relaxed atomics.
//      Contention only appears when two threads hash to one slot, and even
//      then it is a single fetch_add. The registry mutex guards only
//      name -> instrument creation, which instrumentation sites amortize
//      through function-local statics.
//   3. TSan-clean. Every cross-thread access is an atomic; Snapshot() sums
//      the shards with relaxed loads, so a snapshot taken while workers
//      run is a consistent-enough lower bound and a snapshot taken at a
//      quiescent point (the only way the CLI uses it) is exact.
//
// Relaxed ordering is sufficient throughout: the values are monotonic
// event counts with no cross-variable invariants, and every reader that
// needs exactness synchronizes externally (thread join) first.

namespace floq {

/// A named monotonic counter with per-thread sharded slots.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t n = 1) {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all shards (exact once writers have quiesced).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every shard. Only meaningful while writers are quiescent.
  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  static size_t ShardIndex();

  std::array<Shard, kShards> shards_;
};

/// A named point-in-time value (queue depth, registry size, epoch):
/// last-write-wins, not monotonic, so it is a single atomic rather than a
/// sharded sum. Writers are the daemon's own threads; contention is one
/// relaxed store.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A log2-bucketed histogram for latencies and sizes: bucket 0 holds the
/// value 0, bucket i >= 1 holds [2^(i-1), 2^i). 64 buckets cover the full
/// uint64 range (the last bucket absorbs the tail). Units are up to the
/// site; the registry convention is microseconds for *_us names and plain
/// counts otherwise.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr size_t kShards = 8;

  /// Bucket index of `value`: 0 -> 0, otherwise bit_width(value) capped at
  /// kBuckets - 1 (so bucket i >= 1 covers [2^(i-1), 2^i)).
  static int BucketOf(uint64_t value);
  /// Smallest value landing in `bucket`: 0 for bucket 0, else 2^(bucket-1).
  static uint64_t BucketLowerBound(int bucket);

  void Record(uint64_t value) {
    Shard& shard = shards_[ShardIndex()];
    shard.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const;
  uint64_t Sum() const;
  /// Aggregated per-bucket counts.
  std::array<uint64_t, kBuckets> Buckets() const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
  };

  static size_t ShardIndex();

  std::array<Shard, kShards> shards_;
};

/// A point-in-time aggregation of every registered instrument.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, Histogram::kBuckets> buckets{};
  };

  std::vector<CounterValue> counters;      // sorted by name
  std::vector<GaugeValue> gauges;          // sorted by name
  std::vector<HistogramValue> histograms;  // sorted by name

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} — see
  /// DESIGN.md §12 for the schema. Histogram buckets are emitted sparsely
  /// as [[lower_bound, count], ...]. The output is canonical: no trailing
  /// newline or other trailing whitespace, so embedding the snapshot into
  /// a larger JSON document needs no trimming.
  std::string ToJson() const;

  /// Prometheus text exposition (format version 0.0.4): counters become
  /// `floq_<name>_total`, gauges `floq_<name>`, histograms cumulative
  /// `floq_<name>_bucket{le="..."}` series plus `_sum`/`_count`, each with
  /// `# HELP`/`# TYPE` lines. Log2 bucket i >= 1 covers the integer values
  /// [2^(i-1), 2^i), so its inclusive upper bound — the Prometheus `le`
  /// label — is 2^i - 1; bucket 0 maps to le="0". Dots and any other
  /// non-[a-zA-Z0-9_] characters in names become underscores.
  std::string ToPrometheus() const;
};

/// Approximate quantile (q in [0, 1]) of a snapshot histogram: the
/// inclusive upper bound of the log2 bucket containing the ceil(q*count)-th
/// sample. Returns 0 when the histogram is empty. Good to a factor of two,
/// which is what a log2 histogram promises.
double HistogramQuantile(const MetricsSnapshot::HistogramValue& h, double q);

/// The process-wide registry. Instruments are created on first use and
/// live forever (references stay valid; node-stable storage), so sites can
/// cache them in function-local statics:
///
///   if (MetricsRegistry::enabled()) {
///     static Counter& fired = MetricsRegistry::Get().counter("chase.rounds");
///     fired.Add(1);
///   }
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  /// The process-wide collection switch. Off by default; the CLI arms it
  /// for --metrics-out, tests and benches arm it explicitly.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Finds or creates the named instrument. Takes the registry mutex; hot
  /// paths must cache the returned reference.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }

  /// Pointwise difference `after - before`, matched by name: counter
  /// values and histogram counts/sums/buckets subtract (clamped at zero —
  /// a Reset between snapshots must not underflow); instruments present
  /// only in `after` pass through unchanged; gauges are point-in-time, so
  /// the delta carries `after`'s values verbatim. This is what `floq top`
  /// renders between refreshes and what rate-asserting tests diff.
  static MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after);

  /// Zeroes every instrument (names stay registered). For tests and the
  /// overhead bench; only meaningful at a quiescent point.
  void Reset();

 private:
  MetricsRegistry() = default;

  static std::atomic<bool> enabled_;

  struct Impl;
  Impl& impl() const;
};

}  // namespace floq

#endif  // FLOQ_UTIL_METRICS_H_
