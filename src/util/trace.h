#ifndef FLOQ_UTIL_TRACE_H_
#define FLOQ_UTIL_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

// Scoped-span tracing (DESIGN.md §12): while a TraceSession is installed,
// TraceSpan scopes record complete events ("ph":"X") into per-thread ring
// buffers, and ToJson() renders them in the Chrome trace_event format —
// the output loads directly in chrome://tracing and Perfetto. With no
// session installed a span's constructor is one relaxed pointer load and a
// branch; no clock is read and nothing is written, so uninstrumented runs
// pay essentially nothing (bench_observability_overhead, E13).
//
// Contracts (all honored by the CLI and the tests):
//   * at most one TraceSession exists at a time;
//   * the session is created and destroyed at quiescent points (no span
//     live on any thread), and outlives every thread that traced into it;
//   * span names and string args are string literals (the buffer stores
//     the pointers, not copies);
//   * ToJson() is called while writers are quiescent (after fan-out join).
//
// The per-thread buffers are rings: when a thread exceeds its capacity the
// oldest events are overwritten and the drop is counted, so tracing a long
// batch degrades to "most recent window" instead of unbounded memory.

namespace floq {

class TraceSession;

/// One key/value span annotation. `str` non-null means a string value
/// (must be a literal); otherwise `num` is the value.
struct TraceArg {
  const char* key = nullptr;
  const char* str = nullptr;
  int64_t num = 0;
};

/// A completed span: [start, start + duration) on one thread.
struct TraceEvent {
  const char* name = nullptr;
  uint32_t tid = 0;
  int64_t start_ns = 0;  // since session start
  int64_t dur_ns = 0;
  uint8_t num_args = 0;
  std::array<TraceArg, 4> args;
};

/// Installs itself as the process-wide trace sink on construction and
/// uninstalls on destruction.
class TraceSession {
 public:
  /// `events_per_thread` bounds each thread's ring buffer.
  explicit TraceSession(size_t events_per_thread = size_t{1} << 14);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The installed session, or nullptr when tracing is off.
  static TraceSession* Current() {
    return current_.load(std::memory_order_acquire);
  }

  /// Chrome trace_event JSON ({"displayTimeUnit", "traceEvents": [...]}).
  /// Call at a quiescent point only.
  std::string ToJson() const;

  /// Events dropped to ring wrap-around, across all threads.
  uint64_t dropped() const;
  /// Events currently buffered, across all threads.
  uint64_t size() const;

 private:
  friend class TraceSpan;

  struct ThreadBuffer;
  struct Impl;

  /// The calling thread's ring buffer (registered on first use).
  ThreadBuffer& BufferForThisThread();
  void Append(const TraceEvent& event);

  static std::atomic<TraceSession*> current_;

  std::chrono::steady_clock::time_point start_;
  size_t events_per_thread_;
  Impl* impl_;
};

/// Thread-local span suppression for sampled tracing: while a
/// TraceSuppress scope is live on a thread, every TraceSpan constructed on
/// that thread is a no-op even though a session is installed. The daemon
/// wraps non-sampled requests in one of these (`--trace-sample N` keeps
/// every N-th request), so a long-lived session records a representative
/// sample instead of everything. Nestable; costs nothing when no session
/// is installed (the span checks the session pointer first).
class TraceSuppress {
 public:
  TraceSuppress();
  ~TraceSuppress();

  TraceSuppress(const TraceSuppress&) = delete;
  TraceSuppress& operator=(const TraceSuppress&) = delete;

  /// True while any TraceSuppress scope is live on this thread.
  static bool active();
};

/// An RAII scope measured on the monotonic clock. Cheap no-op when no
/// session is installed; the session pointer is captured once at
/// construction, so a scope spans consistently even if the session is
/// being torn down elsewhere (forbidden by contract, but cheap to be
/// robust about).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : session_(TraceSession::Current()) {
    if (session_ == nullptr) return;
    if (TraceSuppress::active()) {
      session_ = nullptr;
      return;
    }
    event_.name = name;
    start_ = std::chrono::steady_clock::now();
  }

  ~TraceSpan() {
    if (session_ == nullptr) return;
    Finish();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return session_ != nullptr; }

  /// Attaches a numeric or literal-string annotation (at most 4 per span;
  /// extras are dropped). No-op when inactive.
  TraceSpan& Arg(const char* key, int64_t value) {
    if (session_ != nullptr && event_.num_args < event_.args.size()) {
      event_.args[event_.num_args++] = TraceArg{key, nullptr, value};
    }
    return *this;
  }
  TraceSpan& Arg(const char* key, const char* value) {
    if (session_ != nullptr && event_.num_args < event_.args.size()) {
      event_.args[event_.num_args++] = TraceArg{key, value, 0};
    }
    return *this;
  }

 private:
  void Finish();

  TraceSession* session_;
  std::chrono::steady_clock::time_point start_;
  TraceEvent event_;
};

}  // namespace floq

#endif  // FLOQ_UTIL_TRACE_H_
