#ifndef FLOQ_UTIL_LOG_H_
#define FLOQ_UTIL_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

// Structured JSON-lines logging (DESIGN.md §17). One line per event:
//
//   {"ts": 1723200000.123, "level": "info", "msg": "listening",
//    "request_id": 42, "trace_id": "abc", "socket": "/tmp/s.sock"}
//
// `ts` is wall-clock unix seconds (millisecond precision), `level` one of
// debug|info|warn|error, `msg` a stable literal identifying the event, and
// the rest typed fields attached by the emitting site. When a
// RequestContext is installed on the emitting thread (the daemon installs
// one per request), `request_id` — and `trace_id` when the client supplied
// one — are appended automatically, which is what makes every server log
// line attributable to a request.
//
// Usage:
//
//   FLOQ_LOG(Warn, "checkpoint.failed").Str("error", message).Num("dirty", n);
//
// Below-threshold events return a disabled builder whose field calls are
// no-ops (no string formatting, no allocation beyond the arguments), so
// debug-level sites are cheap in production. The sink defaults to stderr;
// `floq serve --log-out PATH` redirects it.
// Emission (one fwrite + fflush) happens under a mutex, so concurrent
// connection threads never interleave partial lines.

namespace floq {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// "debug", "info", "warn", "error", "off".
const char* LogLevelName(LogLevel level);
/// Inverse of LogLevelName; false on unknown names.
bool ParseLogLevel(std::string_view text, LogLevel* out);

class Logger;

/// A single in-flight log line, built field by field and emitted on
/// destruction (end of the full expression at the call site). A
/// default-constructed event is disabled and emits nothing — that is what
/// Logger::Log returns for below-threshold levels.
class LogEvent {
 public:
  LogEvent(LogEvent&& other) noexcept
      : logger_(other.logger_), line_(std::move(other.line_)) {
    other.logger_ = nullptr;
  }
  LogEvent& operator=(const LogEvent&) = delete;
  LogEvent(const LogEvent&) = delete;
  ~LogEvent();

  LogEvent& Str(std::string_view key, std::string_view value);
  LogEvent& Num(std::string_view key, int64_t value);

 private:
  friend class Logger;
  LogEvent() = default;
  LogEvent(Logger* logger, LogLevel level, std::string_view msg);

  Logger* logger_ = nullptr;  // nullptr: disabled, emit nothing
  std::string line_;
};

/// The process-wide structured logger. Like MetricsRegistry, a leaked
/// singleton so emission stays valid through static destruction.
class Logger {
 public:
  static Logger& Get();

  /// Minimum level that emits. Relaxed atomic: callers may reconfigure
  /// while connection threads log.
  void set_level(LogLevel level) {
    level_.store(int(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return LogLevel(level_.load(std::memory_order_relaxed));
  }
  bool ShouldLog(LogLevel level) const { return int(level) >= int(this->level()); }

  /// Redirects the sink to `path` (append mode, line-buffered by explicit
  /// flush). The previous file sink, if any, is closed. Call before
  /// spawning threads that log.
  Status OpenFile(const std::string& path);
  /// Restores the default stderr sink (tests use this for isolation).
  void UseStderr();

  /// Starts a line at `level`. Returns a disabled event when the level is
  /// filtered; field calls on a disabled event are no-ops.
  LogEvent Log(LogLevel level, std::string_view msg);

 private:
  friend class LogEvent;
  Logger() = default;

  void Emit(const std::string& line);

  std::atomic<int> level_{int(LogLevel::kInfo)};

  struct Impl;
  Impl& impl() const;
};

/// Emits at `level` (Debug|Info|Warn|Error) with message literal `msg`;
/// chain .Str/.Num fields on the returned builder.
#define FLOQ_LOG(level, msg) \
  ::floq::Logger::Get().Log(::floq::LogLevel::k##level, (msg))

}  // namespace floq

#endif  // FLOQ_UTIL_LOG_H_
