#ifndef FLOQ_UTIL_INTERNER_H_
#define FLOQ_UTIL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/check.h"

// String interning: terms and predicates refer to names by dense uint32
// ids, so that atoms are small value types and comparisons are integral.

namespace floq {

/// Bidirectional map between strings and dense uint32 ids.
class StringInterner {
 public:
  StringInterner() = default;

  // Ids index into names_, so the table must not be copied while ids from
  // another instance are live; moving is fine.
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;
  StringInterner(StringInterner&&) = default;
  StringInterner& operator=(StringInterner&&) = default;

  /// Returns the id for `name`, inserting it if new.
  uint32_t Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    uint32_t id = uint32_t(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name` if present, or UINT32_MAX otherwise.
  uint32_t Lookup(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? UINT32_MAX : it->second;
  }

  /// Returns the name of an interned id.
  const std::string& NameOf(uint32_t id) const {
    FLOQ_CHECK_LT(id, names_.size());
    return names_[id];
  }

  uint32_t size() const { return uint32_t(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> ids_;
};

}  // namespace floq

#endif  // FLOQ_UTIL_INTERNER_H_
