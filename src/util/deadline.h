#ifndef FLOQ_UTIL_DEADLINE_H_
#define FLOQ_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>

// Cooperative resource governance (DESIGN.md §11). A Deadline is a point
// on the monotonic clock; a CancellationToken is a shared flag flipped by
// a CancellationSource on another thread. Long-running loops (the
// homomorphism search, chase rounds, KB saturation) own an ExecGovernor
// and call Tick() once per unit of work: a decrement-and-test on the fast
// path, with the clock read and flag loads amortized over kStride calls.
// When any budget trips the loop unwinds cleanly and the governor latches
// the TripReason for the caller to turn into an UNKNOWN verdict.

namespace floq {

/// A point on the monotonic clock after which work should stop.
/// Default-constructed deadlines are infinite (never expire).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() : when_(Clock::time_point::max()) {}
  explicit Deadline(Clock::time_point when) : when_(when) {}

  static Deadline Infinite() { return Deadline(); }
  static Deadline AfterMillis(int64_t ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }

  bool infinite() const { return when_ == Clock::time_point::max(); }
  bool Expired() const { return !infinite() && Clock::now() >= when_; }
  Clock::time_point when() const { return when_; }

  /// The earlier of two deadlines.
  static Deadline Min(Deadline a, Deadline b) {
    return a.when_ <= b.when_ ? a : b;
  }

 private:
  Clock::time_point when_;
};

/// A shared cancellation flag. Default-constructed tokens are inert
/// (never cancelled); live tokens come from a CancellationSource and may
/// be observed from any thread.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool valid() const { return flag_ != nullptr; }
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Owns a cancellation flag. Cancel() latches until Reset(), which arms a
/// fresh flag (tokens handed out earlier keep observing the old one).
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }
  void Cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }
  void Reset() { flag_ = std::make_shared<std::atomic<bool>>(false); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Why a governed computation stopped early; kNone means it ran to
/// completion. When several stages of one check tripped, the earliest
/// trip is the root cause reported upward (DESIGN.md §11 budget lattice).
enum class TripReason : uint8_t {
  kNone = 0,
  kHomStepBudget,     // the homomorphism-search step budget ran out
  kChaseAtomBudget,   // ChaseOptions::max_atoms hit while materializing
  kDeadlineExceeded,  // the wall-clock deadline passed
  kCancelled,         // a CancellationToken fired
};

inline const char* TripReasonName(TripReason reason) {
  switch (reason) {
    case TripReason::kNone: return "none";
    case TripReason::kHomStepBudget: return "hom-steps";
    case TripReason::kChaseAtomBudget: return "chase-atoms";
    case TripReason::kDeadlineExceeded: return "deadline";
    case TripReason::kCancelled: return "cancelled";
  }
  return "invalid";
}

/// Amortized budget enforcement for one logical computation (one hom
/// search, one chase run). Not thread-safe: each worker owns its
/// governor; only the CancellationTokens are shared across threads.
class ExecGovernor {
 public:
  /// How many Tick() calls share one clock read / flag load. At ~1ns per
  /// search step this bounds deadline overshoot to a few microseconds.
  static constexpr uint32_t kStride = 1024;

  ExecGovernor() = default;
  explicit ExecGovernor(Deadline deadline,
                        CancellationToken cancel = CancellationToken(),
                        uint64_t step_budget = 0)
      : deadline_(deadline),
        cancel_(std::move(cancel)),
        step_budget_(step_budget) {}

  /// A second token slot, so an engine-wide Cancel() composes with a
  /// caller-provided token without allocating a merged source.
  void AddCancellation(CancellationToken token) {
    extra_cancel_ = std::move(token);
  }

  /// Counts one unit of work. Returns true to continue, false once any
  /// budget has tripped (and on every call thereafter). The deadline and
  /// the tokens are only consulted every kStride calls.
  bool Tick() {
    if (trip_ != TripReason::kNone) return false;
    if (--until_check_ != 0) return true;
    return Check(kStride);
  }

  /// Counts `n` units of work in one call, for inner loops too hot even
  /// for Tick()'s member decrement (the leapfrog driver batches its
  /// ticks through a register counter and settles every n iterations).
  /// Equivalent to n Tick() calls except that the budgets are consulted
  /// at batch granularity; keep n well under kStride.
  bool TickBatch(uint32_t n) {
    if (trip_ != TripReason::kNone) return false;
    if (until_check_ > n) {
      until_check_ -= n;
      return true;
    }
    return Check(kStride - until_check_ + n);
  }

  /// An immediate, non-amortized probe for round boundaries where the
  /// next unit of work is large (a chase round, an EGD pass). Counts no
  /// steps against the step budget.
  bool CheckNow() {
    if (trip_ != TripReason::kNone) return false;
    return Check(0);
  }

  bool tripped() const { return trip_ != TripReason::kNone; }
  TripReason trip() const { return trip_; }
  uint64_t steps() const { return steps_; }

  /// Latches a trip detected outside the governor (e.g. the chase atom
  /// budget); an earlier trip wins.
  void ForceTrip(TripReason reason) {
    if (trip_ == TripReason::kNone) trip_ = reason;
  }

 private:
  bool Check(uint32_t stride) {
    steps_ += stride;
    until_check_ = kStride;
    if (step_budget_ != 0 && steps_ >= step_budget_) {
      trip_ = TripReason::kHomStepBudget;
    } else if (cancel_.cancelled() || extra_cancel_.cancelled()) {
      trip_ = TripReason::kCancelled;
    } else if (deadline_.Expired()) {
      trip_ = TripReason::kDeadlineExceeded;
    }
    return trip_ == TripReason::kNone;
  }

  Deadline deadline_;
  CancellationToken cancel_;
  CancellationToken extra_cancel_;
  uint64_t step_budget_ = 0;  // 0 = unlimited
  uint64_t steps_ = 0;
  uint32_t until_check_ = kStride;
  TripReason trip_ = TripReason::kNone;
};

}  // namespace floq

#endif  // FLOQ_UTIL_DEADLINE_H_
