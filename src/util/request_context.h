#ifndef FLOQ_UTIL_REQUEST_CONTEXT_H_
#define FLOQ_UTIL_REQUEST_CONTEXT_H_

#include <cstdint>
#include <string>

#include "util/trace.h"

// Request attribution (DESIGN.md §17). The daemon assigns every request a
// process-unique id, reads the client's optional "trace_id" string, and
// installs a ScopedRequestContext on the connection thread for the
// request's lifetime. Everything downstream that wants attribution —
// structured log lines, trace spans, the reply itself — reads the ambient
// context instead of threading an extra parameter through the engine,
// registry, and WAL signatures.
//
// The context is thread-local: spans and log lines emitted on the serving
// thread (the chase, the hom search at jobs=1, WAL appends, checkpoint
// writes) are attributed; work fanned out to pool threads under jobs>1 is
// not (the span is still recorded, just without the request_id arg). The
// daemon serves with jobs=1 per request, so in practice the whole span
// tree of a request carries its id.

namespace floq {

struct RequestContext {
  uint64_t id = 0;        // server-assigned, unique per daemon process
  std::string trace_id;   // client-supplied, may be empty
};

/// Installs `context` as this thread's ambient request for the scope.
/// Nested scopes restore the previous context on destruction. The caller
/// keeps ownership; `context` must outlive the scope.
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(const RequestContext* context);
  ~ScopedRequestContext();

  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  const RequestContext* previous_;
};

/// The ambient request on this thread, or nullptr outside any scope.
const RequestContext* CurrentRequestContext();

/// Attaches the ambient request id to `span` (no-op outside a request
/// scope or when the span is inactive). The trace id is a client string,
/// so it goes to log lines and replies, not span args (span string args
/// must be literals).
inline void AnnotateWithRequest(TraceSpan& span) {
  if (const RequestContext* context = CurrentRequestContext()) {
    span.Arg("request_id", int64_t(context->id));
  }
}

}  // namespace floq

#endif  // FLOQ_UTIL_REQUEST_CONTEXT_H_
