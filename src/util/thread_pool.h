#ifndef FLOQ_UTIL_THREAD_POOL_H_
#define FLOQ_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"

// A small fixed-size thread pool: a task queue guarded by one mutex and a
// pair of condition variables, no external dependencies. Built for the
// batch-containment engine's fan-out of independent homomorphism searches,
// where tasks are coarse (milliseconds and up) and the pool overhead is
// negligible; it is deliberately not a work-stealing scheduler.

namespace floq {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(size_t threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Drains the queue, then joins the workers.
  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_.push(std::move(task));
      ++pending_;
    }
    wake_.notify_one();
  }

  /// Blocks until every task submitted so far has finished executing.
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return pending_ == 0; });
  }

  /// std::thread::hardware_concurrency with a fallback for the platforms
  /// where it reports 0.
  static size_t DefaultThreads() {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : size_t(hw);
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping, queue drained
        task = std::move(queue_.front());
        queue_.pop();
      }
      task();
      {
        std::unique_lock<std::mutex> lock(mutex_);
        --pending_;
        if (pending_ == 0) idle_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  size_t pending_ = 0;  // submitted but not yet finished
  bool stopping_ = false;
};

/// Runs fn(0) .. fn(count - 1) across the pool and blocks until all are
/// done. The caller must not submit other work to `pool` concurrently —
/// Wait() would observe it.
inline void ParallelFor(ThreadPool& pool, size_t count,
                        const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < count; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

}  // namespace floq

#endif  // FLOQ_UTIL_THREAD_POOL_H_
