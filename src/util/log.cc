#include "util/log.h"

#include <chrono>
#include <cstdio>
#include <mutex>

#include "util/request_context.h"
#include "util/strings.h"

namespace floq {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "info";
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  if (text == "debug") { *out = LogLevel::kDebug; return true; }
  if (text == "info") { *out = LogLevel::kInfo; return true; }
  if (text == "warn") { *out = LogLevel::kWarn; return true; }
  if (text == "error") { *out = LogLevel::kError; return true; }
  if (text == "off") { *out = LogLevel::kOff; return true; }
  return false;
}

namespace {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

LogEvent::LogEvent(Logger* logger, LogLevel level, std::string_view msg)
    : logger_(logger) {
  double now = std::chrono::duration<double>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count();
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%.3f", now);
  line_ = StrCat("{\"ts\": ", ts, ", \"level\": \"", LogLevelName(level),
                 "\", \"msg\": \"", JsonEscape(msg), "\"");
  // Ambient request attribution: every line inside a request scope carries
  // the same request_id the reply and the span tree do.
  if (const RequestContext* context = CurrentRequestContext()) {
    line_ += StrCat(", \"request_id\": ", context->id);
    if (!context->trace_id.empty()) {
      line_ += StrCat(", \"trace_id\": \"", JsonEscape(context->trace_id),
                      "\"");
    }
  }
}

LogEvent::~LogEvent() {
  if (logger_ == nullptr) return;
  line_ += "}\n";
  logger_->Emit(line_);
}

LogEvent& LogEvent::Str(std::string_view key, std::string_view value) {
  if (logger_ != nullptr) {
    line_ += StrCat(", \"", JsonEscape(key), "\": \"", JsonEscape(value),
                    "\"");
  }
  return *this;
}

LogEvent& LogEvent::Num(std::string_view key, int64_t value) {
  if (logger_ != nullptr) {
    line_ += StrCat(", \"", JsonEscape(key), "\": ", value);
  }
  return *this;
}

// Sink state: a mutex-guarded FILE*. nullptr means stderr (never closed).
struct Logger::Impl {
  std::mutex mu;
  FILE* file = nullptr;
};

Logger::Impl& Logger::impl() const {
  static Impl* impl = new Impl();  // leaked: outlives static destructors
  return *impl;
}

Logger& Logger::Get() {
  static Logger* logger = new Logger();
  return *logger;
}

Status Logger::OpenFile(const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return InternalError(StrCat("log.open: cannot open ", path));
  }
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  if (i.file != nullptr) std::fclose(i.file);
  i.file = file;
  return Status::Ok();
}

void Logger::UseStderr() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  if (i.file != nullptr) std::fclose(i.file);
  i.file = nullptr;
}

LogEvent Logger::Log(LogLevel level, std::string_view msg) {
  if (!ShouldLog(level) || level == LogLevel::kOff) return LogEvent();
  return LogEvent(this, level, msg);
}

void Logger::Emit(const std::string& line) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  FILE* sink = i.file != nullptr ? i.file : stderr;
  std::fwrite(line.data(), 1, line.size(), sink);
  std::fflush(sink);
}

}  // namespace floq
