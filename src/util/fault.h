#ifndef FLOQ_UTIL_FAULT_H_
#define FLOQ_UTIL_FAULT_H_

#include <cstddef>

// Deterministic fault injection for crash-recovery testing.
//
// A fault *point* is a named location in a durability-critical code path
// (WAL append, checkpoint write, snapshot load, request handling). The
// crash-recovery suite arms exactly one point per daemon run through the
// environment:
//
//   FLOQ_FAULT=<point>            fire on the first hit
//   FLOQ_FAULT=<point>:<nth>      fire on the nth hit (1-based)
//
// Crash-type points call fault::CrashNow(), which terminates the process
// with _exit(kCrashExitCode) — no atexit handlers, no buffered-IO flush,
// exactly like a kill -9 from the kernel's point of view. Error-type
// points only consult fault::Armed() and turn the hit into an ordinary
// Status error so typed-degradation paths can be tested without dying.
//
// Everything compiles to a no-op unless FLOQ_FAULT_INJECT is defined
// (CMake option of the same name, default ON): Armed() is a constant
// false the optimizer deletes, so production binaries built with the
// option OFF carry zero overhead and no env-var behavior.
//
// The catalog below is compiled unconditionally so tests can assert its
// shape even in a no-inject build.

namespace floq::fault {

// Exit status used by CrashNow; the harness asserts the child died with
// this code to distinguish an injected crash from a real one.
inline constexpr int kCrashExitCode = 42;
// Exit status when FLOQ_FAULT names an unknown point: a misspelled test
// must fail loudly, not silently run fault-free.
inline constexpr int kBadPointExitCode = 41;

// Catalog of every registered point. Names are dot-paths grouped by
// subsystem; `crash` marks points that kill the process when armed,
// the rest surface as injected I/O errors.
struct PointInfo {
  const char* name;
  bool crash;
};

inline constexpr PointInfo kPoints[] = {
    // WAL append path (registry.cc -> wal.cc).
    {"wal.append.before_write", true},   // ack not sent, record absent
    {"wal.append.torn_write", true},     // half a record reaches the disk
    {"wal.append.before_fsync", true},   // record written, not yet durable
    {"wal.append.io_error", false},      // write(2) fails, daemon survives
    {"wal.replay.io_error", false},      // read(2) fails during recovery
    // Checkpoint (tmp + rename) path.
    {"checkpoint.tmp.torn_write", true},   // tmp file half-written
    {"checkpoint.before_rename", true},    // tmp complete, not yet live
    {"checkpoint.after_rename", true},     // live, WAL not yet reset
    {"checkpoint.io_error", false},        // checkpoint fails, WAL keeps it safe
    // Snapshot / checkpoint load during recovery.
    {"registry.load.io_error", false},
    // Request handling inside the daemon.
    {"serve.request.before_execute", true},  // request parsed, nothing ran
    {"serve.request.before_reply", true},    // executed, reply never sent
    {"serve.contain.stall", false},  // contain holds its worker permit
};

inline constexpr size_t kPointCount = sizeof(kPoints) / sizeof(kPoints[0]);

#ifdef FLOQ_FAULT_INJECT

// True when `point` is armed via FLOQ_FAULT and this hit is the armed
// occurrence. Each call for the armed point bumps its hit counter, so
// `point:3` fires on the third call only. Thread-safe.
bool Armed(const char* point);

// Terminate the process via _exit(kCrashExitCode) if `point` is armed.
// Place at crash-type points; a plain `if (Armed(p)) CrashNow();` split
// is wrong because it would double-count the hit.
void MaybeCrash(const char* point);

// Sleep for `millis` if `point` is armed. Stall-type points let tests
// pin a request inside its critical section (e.g. holding an admission
// permit) for a deterministic window, without depending on any query
// being expensive for the engine.
void MaybeStall(const char* point, int millis);

#else

inline bool Armed(const char* /*point*/) { return false; }
inline void MaybeCrash(const char* /*point*/) {}
inline void MaybeStall(const char* /*point*/, int /*millis*/) {}

#endif  // FLOQ_FAULT_INJECT

}  // namespace floq::fault

#endif  // FLOQ_UTIL_FAULT_H_
