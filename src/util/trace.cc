#include "util/trace.h"

#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "util/check.h"

namespace floq {

std::atomic<TraceSession*> TraceSession::current_{nullptr};

// One thread's ring. Only its owning thread writes; ToJson reads at a
// quiescent point (contract), so plain fields suffice except the counters
// a concurrent dropped()/size() probe may read.
struct TraceSession::ThreadBuffer {
  explicit ThreadBuffer(uint32_t tid_in, size_t capacity)
      : tid(tid_in), events(capacity) {}

  uint32_t tid;
  std::vector<TraceEvent> events;  // ring storage
  size_t next = 0;                 // write cursor
  std::atomic<uint64_t> recorded{0};
  std::atomic<uint64_t> dropped{0};
};

struct TraceSession::Impl {
  uint64_t generation = 0;  // process-unique id of this session
  std::mutex mu;            // guards registration only
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

namespace {

// Cache of this thread's buffer within the current session. Keyed on the
// session's process-unique generation, NOT its address: a later session
// can be heap-allocated at a dead session's address, and a pointer tag
// would then hand back a dangling buffer.
struct ThreadCache {
  uint64_t generation = 0;  // 0 never matches a live session
  void* buffer = nullptr;   // TraceSession::ThreadBuffer* (private type)
};

thread_local ThreadCache g_thread_cache;

std::atomic<uint64_t> g_session_generation{0};

thread_local int g_suppress_depth = 0;

}  // namespace

TraceSuppress::TraceSuppress() { ++g_suppress_depth; }
TraceSuppress::~TraceSuppress() { --g_suppress_depth; }
bool TraceSuppress::active() { return g_suppress_depth > 0; }

TraceSession::TraceSession(size_t events_per_thread)
    : start_(std::chrono::steady_clock::now()),
      events_per_thread_(events_per_thread == 0 ? 1 : events_per_thread),
      impl_(new Impl()) {
  impl_->generation =
      g_session_generation.fetch_add(1, std::memory_order_relaxed) + 1;
  TraceSession* expected = nullptr;
  FLOQ_CHECK(current_.compare_exchange_strong(expected, this,
                                              std::memory_order_acq_rel));
}

TraceSession::~TraceSession() {
  current_.store(nullptr, std::memory_order_release);
  delete impl_;
}

TraceSession::ThreadBuffer& TraceSession::BufferForThisThread() {
  ThreadCache& cache = g_thread_cache;
  if (cache.generation == impl_->generation) {
    return *static_cast<ThreadBuffer*>(cache.buffer);
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->buffers.push_back(std::make_unique<ThreadBuffer>(
      uint32_t(impl_->buffers.size()), events_per_thread_));
  ThreadBuffer* buffer = impl_->buffers.back().get();
  cache.generation = impl_->generation;
  cache.buffer = buffer;
  return *buffer;
}

void TraceSession::Append(const TraceEvent& event) {
  ThreadBuffer& buffer = BufferForThisThread();
  TraceEvent stored = event;
  stored.tid = buffer.tid;
  if (buffer.recorded.load(std::memory_order_relaxed) >=
      buffer.events.size()) {
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
  }
  buffer.events[buffer.next] = stored;
  buffer.next = (buffer.next + 1) % buffer.events.size();
  buffer.recorded.fetch_add(1, std::memory_order_relaxed);
}

void TraceSpan::Finish() {
  auto stop = std::chrono::steady_clock::now();
  event_.start_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        start_ - session_->start_)
                        .count();
  event_.dur_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start_)
          .count();
  session_->Append(event_);
}

uint64_t TraceSession::dropped() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  uint64_t total = 0;
  for (const auto& buffer : impl_->buffers) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t TraceSession::size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  uint64_t total = 0;
  for (const auto& buffer : impl_->buffers) {
    uint64_t recorded = buffer->recorded.load(std::memory_order_relaxed);
    total += std::min<uint64_t>(recorded, buffer->events.size());
  }
  return total;
}

namespace {

std::string JsonEscape(const char* text) {
  std::string out;
  for (const char* p = text; *p != '\0'; ++p) {
    char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendEvent(std::string& out, const TraceEvent& event, bool first) {
  char buffer[160];
  // Chrome's ts/dur are microseconds; keep nanosecond precision with
  // fractional values.
  std::snprintf(buffer, sizeof(buffer),
                "%s  {\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                "\"ts\": %.3f, \"dur\": %.3f, \"name\": \"",
                first ? "" : ",\n", event.tid, double(event.start_ns) / 1e3,
                double(event.dur_ns) / 1e3);
  out += buffer;
  out += JsonEscape(event.name);
  out += "\"";
  if (event.num_args > 0) {
    out += ", \"args\": {";
    for (uint8_t i = 0; i < event.num_args; ++i) {
      const TraceArg& arg = event.args[i];
      if (i > 0) out += ", ";
      out += "\"";
      out += JsonEscape(arg.key);
      out += "\": ";
      if (arg.str != nullptr) {
        out += "\"";
        out += JsonEscape(arg.str);
        out += "\"";
      } else {
        char num[24];
        std::snprintf(num, sizeof(num), "%lld",
                      static_cast<long long>(arg.num));
        out += num;
      }
    }
    out += "}";
  }
  out += "}";
}

}  // namespace

std::string TraceSession::ToJson() const {
  std::string out = "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& buffer : impl_->buffers) {
    uint64_t recorded = buffer->recorded.load(std::memory_order_relaxed);
    size_t count = size_t(std::min<uint64_t>(recorded, buffer->events.size()));
    // Oldest-first: a wrapped ring starts at the write cursor.
    size_t begin = recorded > buffer->events.size() ? buffer->next : 0;
    for (size_t i = 0; i < count; ++i) {
      const TraceEvent& event =
          buffer->events[(begin + i) % buffer->events.size()];
      AppendEvent(out, event, first);
      first = false;
    }
  }
  out += first ? "]" : "\n]";
  out += ",\n\"otherData\": {\"tool\": \"floq\"}}\n";
  return out;
}

}  // namespace floq
