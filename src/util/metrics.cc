#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "util/strings.h"

namespace floq {

namespace {

// Round-robin shard assignment: each thread draws one index for its whole
// lifetime, so a fixed thread pool spreads evenly and a single-threaded
// process always hits slot 0 (cache-friendly).
size_t NextThreadSlot() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace

size_t Counter::ShardIndex() { return NextThreadSlot() % kShards; }
size_t Histogram::ShardIndex() { return NextThreadSlot() % kShards; }

int Histogram::BucketOf(uint64_t value) {
  if (value == 0) return 0;
  int width = std::bit_width(value);
  return width < kBuckets ? width : kBuckets - 1;
}

uint64_t Histogram::BucketLowerBound(int bucket) {
  if (bucket <= 0) return 0;
  return uint64_t{1} << (bucket - 1);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::array<uint64_t, Histogram::kBuckets> Histogram::Buckets() const {
  std::array<uint64_t, kBuckets> out{};
  for (const Shard& shard : shards_) {
    for (int i = 0; i < kBuckets; ++i) {
      out[size_t(i)] += shard.buckets[size_t(i)].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

std::atomic<bool> MetricsRegistry::enabled_{false};

// Instrument storage: deques never move elements, so the references the
// instrumentation sites cache in statics stay valid forever. The maps are
// only touched under the mutex (creation and snapshots).
struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::unordered_map<std::string, Counter*> counter_by_name;
  std::unordered_map<std::string, Gauge*> gauge_by_name;
  std::unordered_map<std::string, Histogram*> histogram_by_name;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();  // leaked: outlives static destructors
  return *impl;
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.counter_by_name.find(std::string(name));
  if (it != i.counter_by_name.end()) return *it->second;
  i.counters.emplace_back();
  Counter* c = &i.counters.back();
  i.counter_by_name.emplace(std::string(name), c);
  return *c;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.gauge_by_name.find(std::string(name));
  if (it != i.gauge_by_name.end()) return *it->second;
  i.gauges.emplace_back();
  Gauge* g = &i.gauges.back();
  i.gauge_by_name.emplace(std::string(name), g);
  return *g;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.histogram_by_name.find(std::string(name));
  if (it != i.histogram_by_name.end()) return *it->second;
  i.histograms.emplace_back();
  Histogram* h = &i.histograms.back();
  i.histogram_by_name.emplace(std::string(name), h);
  return *h;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  Impl& i = impl();
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(i.mu);
  snapshot.counters.reserve(i.counter_by_name.size());
  for (const auto& [name, counter] : i.counter_by_name) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(i.gauge_by_name.size());
  for (const auto& [name, gauge] : i.gauge_by_name) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(i.histogram_by_name.size());
  for (const auto& [name, histogram] : i.histogram_by_name) {
    MetricsSnapshot::HistogramValue value;
    value.name = name;
    value.count = histogram->Count();
    value.sum = histogram->Sum();
    value.buckets = histogram->Buckets();
    snapshot.histograms.push_back(std::move(value));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

MetricsSnapshot MetricsRegistry::SnapshotDelta(const MetricsSnapshot& before,
                                               const MetricsSnapshot& after) {
  MetricsSnapshot delta = after;  // gauges (and names-only-in-after) as-is
  for (auto& counter : delta.counters) {
    for (const auto& prior : before.counters) {
      if (prior.name != counter.name) continue;
      counter.value -= std::min(prior.value, counter.value);
      break;
    }
  }
  for (auto& histogram : delta.histograms) {
    for (const auto& prior : before.histograms) {
      if (prior.name != histogram.name) continue;
      histogram.count -= std::min(prior.count, histogram.count);
      histogram.sum -= std::min(prior.sum, histogram.sum);
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        uint64_t& cell = histogram.buckets[size_t(b)];
        cell -= std::min(prior.buckets[size_t(b)], cell);
      }
      break;
    }
  }
  return delta;
}

void MetricsRegistry::Reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  for (Counter& counter : i.counters) counter.Reset();
  for (Gauge& gauge : i.gauges) gauge.Reset();
  for (Histogram& histogram : i.histograms) histogram.Reset();
}

namespace {

// Metric names are dotted identifiers, but escape defensively anyway so
// the export is valid JSON for any registered name.
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += StrCat(i == 0 ? "\n" : ",\n", "    \"",
                  JsonEscape(counters[i].name), "\": ", counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += StrCat(i == 0 ? "\n" : ",\n", "    \"", JsonEscape(gauges[i].name),
                  "\": ", gauges[i].value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    out += StrCat(i == 0 ? "\n" : ",\n", "    \"", JsonEscape(h.name),
                  "\": {\"count\": ", h.count, ", \"sum\": ", h.sum,
                  ", \"buckets\": [");
    bool first = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets[size_t(b)] == 0) continue;
      out += StrCat(first ? "" : ", ", "[", Histogram::BucketLowerBound(b),
                    ", ", h.buckets[size_t(b)], "]");
      first = false;
    }
    out += "]}";
  }
  // Canonical tail: no trailing newline, so embedders (the daemon's
  // `metrics` reply, lint --json) splice the snapshot in verbatim.
  out += histograms.empty() ? "}\n}" : "\n  }\n}";
  return out;
}

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Dotted registry names
// map onto underscores under a floq_ prefix.
std::string PrometheusName(std::string_view name) {
  std::string out = "floq_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

// Inclusive upper bound of a log2 bucket, i.e. the Prometheus `le` label:
// bucket 0 holds only the value 0; bucket i >= 1 covers [2^(i-1), 2^i).
uint64_t BucketUpperBound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= Histogram::kBuckets - 1) return ~uint64_t{0};
  return (uint64_t{1} << bucket) - 1;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  for (const CounterValue& c : counters) {
    std::string name = PrometheusName(c.name) + "_total";
    out += StrCat("# HELP ", name, " floq counter ", c.name, "\n");
    out += StrCat("# TYPE ", name, " counter\n");
    out += StrCat(name, " ", c.value, "\n");
  }
  for (const GaugeValue& g : gauges) {
    std::string name = PrometheusName(g.name);
    out += StrCat("# HELP ", name, " floq gauge ", g.name, "\n");
    out += StrCat("# TYPE ", name, " gauge\n");
    out += StrCat(name, " ", g.value, "\n");
  }
  for (const HistogramValue& h : histograms) {
    std::string name = PrometheusName(h.name);
    out += StrCat("# HELP ", name, " floq log2 histogram ", h.name, "\n");
    out += StrCat("# TYPE ", name, " histogram\n");
    int highest = -1;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets[size_t(b)] != 0) highest = b;
    }
    uint64_t cumulative = 0;
    for (int b = 0; b <= highest; ++b) {
      cumulative += h.buckets[size_t(b)];
      out += StrCat(name, "_bucket{le=\"", BucketUpperBound(b), "\"} ",
                    cumulative, "\n");
    }
    out += StrCat(name, "_bucket{le=\"+Inf\"} ", h.count, "\n");
    out += StrCat(name, "_sum ", h.sum, "\n");
    out += StrCat(name, "_count ", h.count, "\n");
  }
  return out;
}

double HistogramQuantile(const MetricsSnapshot::HistogramValue& h, double q) {
  if (h.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = uint64_t(q * double(h.count - 1)) + 1;  // 1-based
  uint64_t cumulative = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    cumulative += h.buckets[size_t(b)];
    if (cumulative >= rank) return double(BucketUpperBound(b));
  }
  return double(BucketUpperBound(Histogram::kBuckets - 1));
}

}  // namespace floq
