#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "util/strings.h"

namespace floq {

namespace {

// Round-robin shard assignment: each thread draws one index for its whole
// lifetime, so a fixed thread pool spreads evenly and a single-threaded
// process always hits slot 0 (cache-friendly).
size_t NextThreadSlot() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace

size_t Counter::ShardIndex() { return NextThreadSlot() % kShards; }
size_t Histogram::ShardIndex() { return NextThreadSlot() % kShards; }

int Histogram::BucketOf(uint64_t value) {
  if (value == 0) return 0;
  int width = std::bit_width(value);
  return width < kBuckets ? width : kBuckets - 1;
}

uint64_t Histogram::BucketLowerBound(int bucket) {
  if (bucket <= 0) return 0;
  return uint64_t{1} << (bucket - 1);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::array<uint64_t, Histogram::kBuckets> Histogram::Buckets() const {
  std::array<uint64_t, kBuckets> out{};
  for (const Shard& shard : shards_) {
    for (int i = 0; i < kBuckets; ++i) {
      out[size_t(i)] += shard.buckets[size_t(i)].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

std::atomic<bool> MetricsRegistry::enabled_{false};

// Instrument storage: deques never move elements, so the references the
// instrumentation sites cache in statics stay valid forever. The maps are
// only touched under the mutex (creation and snapshots).
struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::deque<Counter> counters;
  std::deque<Histogram> histograms;
  std::unordered_map<std::string, Counter*> counter_by_name;
  std::unordered_map<std::string, Histogram*> histogram_by_name;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();  // leaked: outlives static destructors
  return *impl;
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.counter_by_name.find(std::string(name));
  if (it != i.counter_by_name.end()) return *it->second;
  i.counters.emplace_back();
  Counter* c = &i.counters.back();
  i.counter_by_name.emplace(std::string(name), c);
  return *c;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.histogram_by_name.find(std::string(name));
  if (it != i.histogram_by_name.end()) return *it->second;
  i.histograms.emplace_back();
  Histogram* h = &i.histograms.back();
  i.histogram_by_name.emplace(std::string(name), h);
  return *h;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  Impl& i = impl();
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(i.mu);
  snapshot.counters.reserve(i.counter_by_name.size());
  for (const auto& [name, counter] : i.counter_by_name) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.histograms.reserve(i.histogram_by_name.size());
  for (const auto& [name, histogram] : i.histogram_by_name) {
    MetricsSnapshot::HistogramValue value;
    value.name = name;
    value.count = histogram->Count();
    value.sum = histogram->Sum();
    value.buckets = histogram->Buckets();
    snapshot.histograms.push_back(std::move(value));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

void MetricsRegistry::Reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  for (Counter& counter : i.counters) counter.Reset();
  for (Histogram& histogram : i.histograms) histogram.Reset();
}

namespace {

// Metric names are dotted identifiers, but escape defensively anyway so
// the export is valid JSON for any registered name.
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += StrCat(i == 0 ? "\n" : ",\n", "    \"",
                  JsonEscape(counters[i].name), "\": ", counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    out += StrCat(i == 0 ? "\n" : ",\n", "    \"", JsonEscape(h.name),
                  "\": {\"count\": ", h.count, ", \"sum\": ", h.sum,
                  ", \"buckets\": [");
    bool first = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets[size_t(b)] == 0) continue;
      out += StrCat(first ? "" : ", ", "[", Histogram::BucketLowerBound(b),
                    ", ", h.buckets[size_t(b)], "]");
      first = false;
    }
    out += "]}";
  }
  out += histograms.empty() ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

}  // namespace floq
