#ifndef FLOQ_UTIL_STRINGS_H_
#define FLOQ_UTIL_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

// Small string helpers shared by the parsers and printers.

namespace floq {

/// Concatenates the streamed representations of the arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  // void-cast: with an empty pack the fold collapses to plain `out`,
  // which gcc otherwise flags as a statement with no effect.
  static_cast<void>((out << ... << args));
  return out.str();
}

/// Joins the elements of `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Splits on a single character, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace floq

#endif  // FLOQ_UTIL_STRINGS_H_
