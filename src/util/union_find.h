#ifndef FLOQ_UTIL_UNION_FIND_H_
#define FLOQ_UTIL_UNION_FIND_H_

#include <cstdint>
#include <vector>

// Disjoint-set forest used by the chase to apply equality-generating
// dependencies (rule rho_4 of Sigma_FL): when two terms are equated, their
// equivalence classes are merged and a caller-chosen representative wins.

namespace floq {

/// Union-find over dense uint32 ids with path compression.
///
/// Unlike the textbook structure, Union() lets the caller pick which root
/// becomes the representative: the chase must keep the term that precedes in
/// the chase order (constants before nulls before variables), not the one in
/// the larger tree.
class UnionFind {
 public:
  UnionFind() = default;

  /// Ensures ids [0, n) exist, each initially its own singleton class.
  void GrowTo(uint32_t n) {
    while (parent_.size() < n) parent_.push_back(uint32_t(parent_.size()));
  }

  uint32_t size() const { return uint32_t(parent_.size()); }

  /// Returns the representative of `id`'s class. Grows on demand.
  uint32_t Find(uint32_t id) {
    GrowTo(id + 1);
    uint32_t root = id;
    while (parent_[root] != root) root = parent_[root];
    // Path compression.
    while (parent_[id] != root) {
      uint32_t next = parent_[id];
      parent_[id] = root;
      id = next;
    }
    return root;
  }

  /// Merges the classes of `winner` and `loser`; the representative of
  /// `winner`'s class becomes the representative of the union. Returns true
  /// if the two were previously in distinct classes.
  bool Union(uint32_t winner, uint32_t loser) {
    uint32_t w = Find(winner);
    uint32_t l = Find(loser);
    if (w == l) return false;
    parent_[l] = w;
    return true;
  }

  /// True if the two ids are currently in the same class.
  bool Same(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace floq

#endif  // FLOQ_UTIL_UNION_FIND_H_
