#ifndef FLOQ_UTIL_FUNCTION_REF_H_
#define FLOQ_UTIL_FUNCTION_REF_H_

#include <memory>
#include <type_traits>
#include <utility>

// A non-owning reference to a callable, in the spirit of C++26
// std::function_ref: two words (object pointer + invoker), trivially
// copyable, no allocation and no virtual dispatch. Used on hot paths
// (the conjunction matcher's per-match callback) where std::function's
// type erasure showed up in profiles. The referenced callable must outlive
// the FunctionRef — fine for the synchronous enumeration callbacks it
// replaces, where the lambda lives in the caller's frame for the whole
// call.

namespace floq {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Implicit by design, mirroring std::function_ref: callers pass lambdas
  /// directly to functions taking a FunctionRef parameter.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) {  // NOLINT(runtime/explicit)
    using Fn = std::remove_reference_t<F>;
    if constexpr (std::is_function_v<Fn>) {
      // Plain functions: store the function pointer itself (an object
      // pointer to it would dangle; void* <-> function pointer casts are
      // conditionally supported but fine on every POSIX target).
      object_ = reinterpret_cast<void*>(&f);
      invoke_ = [](void* object, Args... args) -> R {
        return (reinterpret_cast<Fn*>(object))(std::forward<Args>(args)...);
      };
    } else {
      object_ = const_cast<void*>(static_cast<const void*>(std::addressof(f)));
      invoke_ = [](void* object, Args... args) -> R {
        return (*static_cast<Fn*>(object))(std::forward<Args>(args)...);
      };
    }
  }

  R operator()(Args... args) const {
    return invoke_(object_, std::forward<Args>(args)...);
  }

 private:
  void* object_;
  R (*invoke_)(void*, Args...);
};

}  // namespace floq

#endif  // FLOQ_UTIL_FUNCTION_REF_H_
