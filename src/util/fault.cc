#include "util/fault.h"

#ifdef FLOQ_FAULT_INJECT

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace floq::fault {
namespace {

struct ArmedPoint {
  std::string name;
  long nth = 1;  // fire on the nth hit, 1-based
  std::atomic<long> hits{0};
  bool valid = false;
};

void Initialize(ArmedPoint& a) {
  const char* env = std::getenv("FLOQ_FAULT");
  if (env == nullptr || env[0] == '\0') return;
  std::string spec(env);
  if (size_t colon = spec.rfind(':'); colon != std::string::npos) {
    a.nth = std::strtol(spec.c_str() + colon + 1, nullptr, 10);
    spec.resize(colon);
  }
  if (a.nth < 1) a.nth = 1;
  bool known = false;
  for (const PointInfo& p : kPoints) {
    if (spec == p.name) {
      known = true;
      break;
    }
  }
  if (!known) {
    std::fprintf(stderr, "floq: FLOQ_FAULT names unknown point '%s'\n",
                 spec.c_str());
    _exit(kBadPointExitCode);
  }
  a.name = std::move(spec);
  a.valid = true;
}

ArmedPoint& Armed_() {
  static ArmedPoint armed;
  static std::once_flag once;
  std::call_once(once, [] { Initialize(armed); });
  return armed;
}

}  // namespace

bool Armed(const char* point) {
  ArmedPoint& armed = Armed_();
  if (!armed.valid || armed.name != point) return false;
  return armed.hits.fetch_add(1, std::memory_order_relaxed) + 1 == armed.nth;
}

void MaybeCrash(const char* point) {
  if (Armed(point)) {
    // _exit, not exit: no stream flush, no atexit — indistinguishable
    // from the process being killed at this instruction.
    _exit(kCrashExitCode);
  }
}

void MaybeStall(const char* point, int millis) {
  if (Armed(point)) {
    ::usleep(useconds_t(millis) * 1000);
  }
}

}  // namespace floq::fault

#endif  // FLOQ_FAULT_INJECT
