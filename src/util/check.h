#ifndef FLOQ_UTIL_CHECK_H_
#define FLOQ_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// Internal invariant checking. The library does not use exceptions
// (errors that callers can act on travel through floq::Status /
// floq::Result); FLOQ_CHECK is reserved for programming errors and
// aborts with a diagnostic.

namespace floq::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const std::string& message) {
  std::fprintf(stderr, "FLOQ_CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Accumulates an optional streamed message for FLOQ_CHECK.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, condition_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace floq::internal

#define FLOQ_CHECK(condition)                                          \
  while (!(condition))                                                 \
  ::floq::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

// Debug-only invariant check: compiled out under NDEBUG (the default
// RelWithDebInfo build), active in Debug and sanitizer builds. Used on
// per-insert hot paths where the always-on FLOQ_CHECK would be
// measurable (e.g. the FactIndex posting-list sortedness invariant).
#ifdef NDEBUG
#define FLOQ_DCHECK(condition) \
  while (false && !(condition)) \
  ::floq::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)
#else
#define FLOQ_DCHECK(condition) FLOQ_CHECK(condition)
#endif

#define FLOQ_CHECK_EQ(a, b) FLOQ_CHECK((a) == (b))
#define FLOQ_CHECK_NE(a, b) FLOQ_CHECK((a) != (b))
#define FLOQ_CHECK_LT(a, b) FLOQ_CHECK((a) < (b))
#define FLOQ_CHECK_LE(a, b) FLOQ_CHECK((a) <= (b))
#define FLOQ_CHECK_GT(a, b) FLOQ_CHECK((a) > (b))
#define FLOQ_CHECK_GE(a, b) FLOQ_CHECK((a) >= (b))

#endif  // FLOQ_UTIL_CHECK_H_
