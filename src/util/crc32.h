#ifndef FLOQ_UTIL_CRC32_H_
#define FLOQ_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace floq {

// IEEE CRC-32 (reflected polynomial 0xEDB88320), the variant used by
// zlib/gzip. Frames every WAL record and snapshot section so torn or
// bit-flipped bytes are detected on recovery instead of silently
// replayed into the registry.
namespace crc32_internal {

inline const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace crc32_internal

// Incremental form: pass the previous return value as `seed` to extend a
// running checksum over discontiguous buffers.
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  const auto& table = crc32_internal::Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace floq

#endif  // FLOQ_UTIL_CRC32_H_
