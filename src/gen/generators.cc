#include "gen/generators.h"

#include <unordered_set>

#include "util/check.h"
#include "util/rng.h"
#include "util/strings.h"

namespace floq::gen {

ConjunctiveQuery MakeAttributeChainQuery(World& world, int hops,
                                         bool with_subclass_hops,
                                         const std::string& name) {
  FLOQ_CHECK_GE(hops, 1);
  std::vector<Atom> body;
  std::vector<Term> attrs;
  int class_counter = 1;
  Term current = world.MakeVariable(StrCat(name, "_T", class_counter++));
  for (int i = 1; i <= hops; ++i) {
    Term attr = world.MakeVariable(StrCat(name, "_A", i));
    Term range = world.MakeVariable(StrCat(name, "_T", class_counter++));
    body.push_back(Atom::Type(current, attr, range));
    attrs.push_back(attr);
    if (with_subclass_hops && i < hops) {
      Term super = world.MakeVariable(StrCat(name, "_T", class_counter++));
      body.push_back(Atom::Sub(range, super));
      current = super;
    } else {
      current = range;
    }
  }
  std::vector<Term> head = {attrs.front(), attrs.back()};
  return ConjunctiveQuery(name, std::move(head), std::move(body));
}

ConjunctiveQuery MakeMandatoryCycleQuery(World& world, int k,
                                         const std::string& name) {
  FLOQ_CHECK_GE(k, 1);
  std::vector<Atom> body;
  for (int i = 1; i <= k; ++i) {
    Term attr = world.MakeConstant(StrCat(name, "_a", i));
    Term cls = world.MakeConstant(StrCat(name, "_t", i));
    Term next = world.MakeConstant(StrCat(name, "_t", i == k ? 1 : i + 1));
    body.push_back(Atom::Mandatory(attr, cls));
    body.push_back(Atom::Type(cls, attr, next));
  }
  return ConjunctiveQuery(name, {}, std::move(body));
}

ConjunctiveQuery MakeDataChainProbe(World& world, int length,
                                    const std::string& name) {
  FLOQ_CHECK_GE(length, 1);
  std::vector<Atom> body;
  Term attr = world.MakeVariable(StrCat(name, "_X"));
  Term current = world.MakeVariable(StrCat(name, "_O1"));
  for (int i = 1; i <= length; ++i) {
    Term next = world.MakeVariable(StrCat(name, "_O", i + 1));
    body.push_back(Atom::Data(current, attr, next));
    current = next;
  }
  return ConjunctiveQuery(name, {}, std::move(body));
}

ConjunctiveQuery MakeFunctFanQuery(World& world, int fan,
                                   const std::string& name) {
  FLOQ_CHECK_GE(fan, 1);
  Term attr = world.MakeConstant(StrCat(name, "_a"));
  Term object = world.MakeConstant(StrCat(name, "_o"));
  std::vector<Atom> body = {Atom::Funct(attr, object)};
  std::vector<Term> head;
  for (int i = 1; i <= fan; ++i) {
    Term value = world.MakeVariable(StrCat(name, "_V", i));
    body.push_back(Atom::Data(object, attr, value));
    if (head.empty()) head.push_back(value);
  }
  return ConjunctiveQuery(name, std::move(head), std::move(body));
}

ConjunctiveQuery MakeRandomQuery(World& world, const RandomQuerySpec& spec,
                                 const std::string& name) {
  FLOQ_CHECK_GE(spec.atoms, 1);
  FLOQ_CHECK_GE(spec.variable_pool, 1);
  Rng rng(spec.seed);

  std::vector<Term> variables;
  for (int i = 0; i < spec.variable_pool; ++i) {
    variables.push_back(world.MakeVariable(StrCat(name, "_V", i)));
  }
  std::vector<Term> constants;
  for (int i = 0; i < spec.constant_pool; ++i) {
    constants.push_back(world.MakeConstant(StrCat("c", i)));
  }

  auto pick_term = [&]() {
    if (!constants.empty() && rng.Chance(spec.constant_probability)) {
      return constants[rng.Below(constants.size())];
    }
    return variables[rng.Below(variables.size())];
  };

  // Predicate menu; constraint predicates only when requested.
  std::vector<PredicateId> menu = {pfl::kMember, pfl::kSub, pfl::kData,
                                   pfl::kType};
  if (spec.with_constraints) {
    menu.push_back(pfl::kMandatory);
    menu.push_back(pfl::kFunct);
  }

  std::vector<Atom> body;
  std::unordered_set<uint32_t> used_variable_raws;
  for (int i = 0; i < spec.atoms; ++i) {
    PredicateId pred = menu[rng.Below(menu.size())];
    int arity = world.predicates().ArityOf(pred);
    std::vector<Term> args;
    for (int j = 0; j < arity; ++j) {
      Term t = pick_term();
      if (t.IsVariable()) used_variable_raws.insert(t.raw());
      args.push_back(t);
    }
    body.push_back(Atom(pred, args));
  }

  // Head: safe variables only.
  std::vector<Term> used_variables;
  for (Term v : variables) {
    if (used_variable_raws.count(v.raw()) > 0) used_variables.push_back(v);
  }
  std::vector<Term> head;
  for (int i = 0; i < spec.arity && !used_variables.empty(); ++i) {
    head.push_back(used_variables[rng.Below(used_variables.size())]);
  }
  return ConjunctiveQuery(name, std::move(head), std::move(body));
}

std::vector<Atom> MakeRandomKbFacts(World& world, const RandomKbSpec& spec) {
  Rng rng(spec.seed);

  std::vector<Term> classes;
  for (int i = 0; i < spec.classes; ++i) {
    classes.push_back(world.MakeConstant(StrCat("class", i)));
  }
  std::vector<Term> objects;
  for (int i = 0; i < spec.objects; ++i) {
    objects.push_back(world.MakeConstant(StrCat("obj", i)));
  }
  std::vector<Term> attributes;
  for (int i = 0; i < spec.attributes; ++i) {
    attributes.push_back(world.MakeConstant(StrCat("attr", i)));
  }

  auto pick = [&rng](const std::vector<Term>& pool) {
    return pool[rng.Below(pool.size())];
  };

  std::vector<Atom> facts;
  for (int i = 0; i < spec.sub_facts && spec.classes >= 2; ++i) {
    // Acyclic subclass edges: from a lower index to a strictly higher one.
    uint64_t lo = rng.Below(uint64_t(spec.classes - 1));
    uint64_t hi = lo + 1 + rng.Below(uint64_t(spec.classes) - lo - 1);
    facts.push_back(Atom::Sub(classes[lo], classes[hi]));
  }
  for (int i = 0; i < spec.member_facts; ++i) {
    facts.push_back(Atom::Member(pick(objects), pick(classes)));
  }
  for (int i = 0; i < spec.data_facts; ++i) {
    facts.push_back(Atom::Data(pick(objects), pick(attributes), pick(objects)));
  }
  for (int i = 0; i < spec.type_facts; ++i) {
    facts.push_back(Atom::Type(pick(classes), pick(attributes), pick(classes)));
  }
  for (int i = 0; i < spec.mandatory_facts; ++i) {
    facts.push_back(Atom::Mandatory(pick(attributes), pick(classes)));
  }
  for (int i = 0; i < spec.funct_facts; ++i) {
    facts.push_back(Atom::Funct(pick(attributes), pick(classes)));
  }
  return facts;
}

}  // namespace floq::gen
