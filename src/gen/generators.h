#ifndef FLOQ_GEN_GENERATORS_H_
#define FLOQ_GEN_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/conjunctive_query.h"
#include "term/atom.h"
#include "term/world.h"

// Deterministic workload generators for the benchmarks and property tests.
// Every generator is a pure function of (World, spec): identical seeds
// produce identical workloads, so benchmark tables are reproducible.

namespace floq::gen {

// ---- structured families from the paper ------------------------------------

/// The §2 "joinable attributes" family generalized to a chain of n hops:
///
///   q(A1, An) :- type(T1, A1, T2), sub(T2, T3), type(T3, A2, T4),
///                sub(T4, T5), ..., type(T_{2n-1}, An, T_2n).
///
/// with_subclass_hops=false omits the sub() atoms, giving the paper's qq
/// shape. Containment of the long form in the short form exercises rho_8.
ConjunctiveQuery MakeAttributeChainQuery(World& world, int hops,
                                         bool with_subclass_hops,
                                         const std::string& name = "q");

/// The §4 cycle of k mandatory attributes over constants:
///
///   q() :- mandatory(a1, t1), type(t1, a1, t2),
///          mandatory(a2, t2), type(t2, a2, t3), ...,
///          mandatory(ak, tk), type(tk, ak, t1).
///
/// Its chase is infinite; the chain invents one null every few levels.
ConjunctiveQuery MakeMandatoryCycleQuery(World& world, int k,
                                         const std::string& name = "q");

/// A probe query asking for a data-chain of `length` hops along one
/// attribute variable: q() :- data(O1, X, O2), ..., data(On, X, On+1).
/// Containment of a mandatory cycle in this probe requires materializing
/// ~3·length levels of the chase.
ConjunctiveQuery MakeDataChainProbe(World& world, int length,
                                    const std::string& name = "probe");

/// m parallel values of one functional attribute:
/// q(V1) :- funct(a, o), data(o, a, V1), ..., data(o, a, Vm).
/// The chase must merge all m values into one (rho_4 stress test).
ConjunctiveQuery MakeFunctFanQuery(World& world, int fan,
                                   const std::string& name = "q");

// ---- random meta-queries -----------------------------------------------------

struct RandomQuerySpec {
  uint64_t seed = 1;
  int atoms = 4;
  /// Size of the variable pool; smaller pools make denser joins.
  int variable_pool = 4;
  /// Size of the constant pool shared across queries of one experiment.
  int constant_pool = 3;
  /// Probability that an argument position is a constant.
  double constant_probability = 0.25;
  /// Head arity (head terms are drawn from the body's variables; if the
  /// body has no variables the head shrinks).
  int arity = 1;
  /// Include mandatory/funct atoms (they trigger rho_4/rho_5 machinery).
  bool with_constraints = true;
};

/// A random conjunctive meta-query over P_FL. Always safe (head variables
/// occur in the body) and valid.
ConjunctiveQuery MakeRandomQuery(World& world, const RandomQuerySpec& spec,
                                 const std::string& name = "q");

// ---- random databases ----------------------------------------------------------

struct RandomKbSpec {
  uint64_t seed = 1;
  int classes = 6;
  int objects = 12;
  int attributes = 4;
  int sub_facts = 6;
  int member_facts = 12;
  int data_facts = 20;
  int type_facts = 6;
  int mandatory_facts = 2;
  int funct_facts = 2;
};

/// Ground facts for a random F-logic Lite database. The result is not
/// saturated and may violate rho_4/rho_5; feed it to a KnowledgeBase and
/// Saturate (with completion rounds) to obtain a legal instance.
std::vector<Atom> MakeRandomKbFacts(World& world, const RandomKbSpec& spec);

}  // namespace floq::gen

#endif  // FLOQ_GEN_GENERATORS_H_
