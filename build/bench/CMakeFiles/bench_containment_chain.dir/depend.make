# Empty dependencies file for bench_containment_chain.
# This may be replaced when dependencies are built.
