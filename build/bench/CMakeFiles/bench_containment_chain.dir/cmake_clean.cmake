file(REMOVE_RECURSE
  "CMakeFiles/bench_containment_chain.dir/bench_containment_chain.cc.o"
  "CMakeFiles/bench_containment_chain.dir/bench_containment_chain.cc.o.d"
  "bench_containment_chain"
  "bench_containment_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_containment_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
