# Empty dependencies file for bench_egd_merge.
# This may be replaced when dependencies are built.
