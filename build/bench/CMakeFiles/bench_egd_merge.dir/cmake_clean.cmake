file(REMOVE_RECURSE
  "CMakeFiles/bench_egd_merge.dir/bench_egd_merge.cc.o"
  "CMakeFiles/bench_egd_merge.dir/bench_egd_merge.cc.o.d"
  "bench_egd_merge"
  "bench_egd_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_egd_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
