# Empty dependencies file for bench_generic_chase.
# This may be replaced when dependencies are built.
