file(REMOVE_RECURSE
  "CMakeFiles/bench_generic_chase.dir/bench_generic_chase.cc.o"
  "CMakeFiles/bench_generic_chase.dir/bench_generic_chase.cc.o.d"
  "bench_generic_chase"
  "bench_generic_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generic_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
