# Empty compiler generated dependencies file for bench_hom_search.
# This may be replaced when dependencies are built.
