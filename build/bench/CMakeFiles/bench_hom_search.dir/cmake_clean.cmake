file(REMOVE_RECURSE
  "CMakeFiles/bench_hom_search.dir/bench_hom_search.cc.o"
  "CMakeFiles/bench_hom_search.dir/bench_hom_search.cc.o.d"
  "bench_hom_search"
  "bench_hom_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hom_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
