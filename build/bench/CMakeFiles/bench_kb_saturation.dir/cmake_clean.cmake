file(REMOVE_RECURSE
  "CMakeFiles/bench_kb_saturation.dir/bench_kb_saturation.cc.o"
  "CMakeFiles/bench_kb_saturation.dir/bench_kb_saturation.cc.o.d"
  "bench_kb_saturation"
  "bench_kb_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kb_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
