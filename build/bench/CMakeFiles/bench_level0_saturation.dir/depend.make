# Empty dependencies file for bench_level0_saturation.
# This may be replaced when dependencies are built.
