file(REMOVE_RECURSE
  "CMakeFiles/bench_level0_saturation.dir/bench_level0_saturation.cc.o"
  "CMakeFiles/bench_level0_saturation.dir/bench_level0_saturation.cc.o.d"
  "bench_level0_saturation"
  "bench_level0_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_level0_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
