# Empty compiler generated dependencies file for bench_cycle_depth.
# This may be replaced when dependencies are built.
