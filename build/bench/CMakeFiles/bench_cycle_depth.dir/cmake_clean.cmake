file(REMOVE_RECURSE
  "CMakeFiles/bench_cycle_depth.dir/bench_cycle_depth.cc.o"
  "CMakeFiles/bench_cycle_depth.dir/bench_cycle_depth.cc.o.d"
  "bench_cycle_depth"
  "bench_cycle_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cycle_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
