file(REMOVE_RECURSE
  "CMakeFiles/floq_cli.dir/floq_cli.cc.o"
  "CMakeFiles/floq_cli.dir/floq_cli.cc.o.d"
  "floq"
  "floq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
