# Empty compiler generated dependencies file for floq_cli.
# This may be replaced when dependencies are built.
