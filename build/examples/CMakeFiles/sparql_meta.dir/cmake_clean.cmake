file(REMOVE_RECURSE
  "CMakeFiles/sparql_meta.dir/sparql_meta.cpp.o"
  "CMakeFiles/sparql_meta.dir/sparql_meta.cpp.o.d"
  "sparql_meta"
  "sparql_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
