# Empty compiler generated dependencies file for sparql_meta.
# This may be replaced when dependencies are built.
