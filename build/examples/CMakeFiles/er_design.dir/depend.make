# Empty dependencies file for er_design.
# This may be replaced when dependencies are built.
