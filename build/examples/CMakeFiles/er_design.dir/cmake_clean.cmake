file(REMOVE_RECURSE
  "CMakeFiles/er_design.dir/er_design.cpp.o"
  "CMakeFiles/er_design.dir/er_design.cpp.o.d"
  "er_design"
  "er_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
