file(REMOVE_RECURSE
  "CMakeFiles/ontology_integration.dir/ontology_integration.cpp.o"
  "CMakeFiles/ontology_integration.dir/ontology_integration.cpp.o.d"
  "ontology_integration"
  "ontology_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ontology_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
