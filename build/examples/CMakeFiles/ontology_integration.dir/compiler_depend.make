# Empty compiler generated dependencies file for ontology_integration.
# This may be replaced when dependencies are built.
