# Empty compiler generated dependencies file for generic_chase_test.
# This may be replaced when dependencies are built.
