file(REMOVE_RECURSE
  "CMakeFiles/generic_chase_test.dir/generic_chase_test.cc.o"
  "CMakeFiles/generic_chase_test.dir/generic_chase_test.cc.o.d"
  "generic_chase_test"
  "generic_chase_test.pdb"
  "generic_chase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_chase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
