# Empty compiler generated dependencies file for flogic_test.
# This may be replaced when dependencies are built.
