
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/scenario_test.cc" "tests/CMakeFiles/scenario_test.dir/scenario_test.cc.o" "gcc" "tests/CMakeFiles/scenario_test.dir/scenario_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdf/CMakeFiles/floq_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/containment/CMakeFiles/floq_containment.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/floq_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/flogic/CMakeFiles/floq_flogic.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/floq_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/floq_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/floq_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/floq_query.dir/DependInfo.cmake"
  "/root/repo/build/src/er/CMakeFiles/floq_er.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/floq_term.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/floq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
