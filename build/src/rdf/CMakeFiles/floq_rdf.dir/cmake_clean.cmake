file(REMOVE_RECURSE
  "CMakeFiles/floq_rdf.dir/rdf_graph.cc.o"
  "CMakeFiles/floq_rdf.dir/rdf_graph.cc.o.d"
  "CMakeFiles/floq_rdf.dir/sparql.cc.o"
  "CMakeFiles/floq_rdf.dir/sparql.cc.o.d"
  "libfloq_rdf.a"
  "libfloq_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floq_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
