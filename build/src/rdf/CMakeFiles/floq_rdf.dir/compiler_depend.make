# Empty compiler generated dependencies file for floq_rdf.
# This may be replaced when dependencies are built.
