file(REMOVE_RECURSE
  "libfloq_rdf.a"
)
