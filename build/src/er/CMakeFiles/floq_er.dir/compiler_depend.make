# Empty compiler generated dependencies file for floq_er.
# This may be replaced when dependencies are built.
