file(REMOVE_RECURSE
  "CMakeFiles/floq_er.dir/er_schema.cc.o"
  "CMakeFiles/floq_er.dir/er_schema.cc.o.d"
  "libfloq_er.a"
  "libfloq_er.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floq_er.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
