file(REMOVE_RECURSE
  "libfloq_er.a"
)
