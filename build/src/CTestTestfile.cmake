# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("term")
subdirs("query")
subdirs("flogic")
subdirs("datalog")
subdirs("chase")
subdirs("containment")
subdirs("kb")
subdirs("rdf")
subdirs("gen")
subdirs("er")
