file(REMOVE_RECURSE
  "CMakeFiles/floq_chase.dir/chase.cc.o"
  "CMakeFiles/floq_chase.dir/chase.cc.o.d"
  "CMakeFiles/floq_chase.dir/dependencies.cc.o"
  "CMakeFiles/floq_chase.dir/dependencies.cc.o.d"
  "CMakeFiles/floq_chase.dir/generic_chase.cc.o"
  "CMakeFiles/floq_chase.dir/generic_chase.cc.o.d"
  "CMakeFiles/floq_chase.dir/graph_dot.cc.o"
  "CMakeFiles/floq_chase.dir/graph_dot.cc.o.d"
  "CMakeFiles/floq_chase.dir/sigma_fl.cc.o"
  "CMakeFiles/floq_chase.dir/sigma_fl.cc.o.d"
  "libfloq_chase.a"
  "libfloq_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floq_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
