# Empty dependencies file for floq_chase.
# This may be replaced when dependencies are built.
