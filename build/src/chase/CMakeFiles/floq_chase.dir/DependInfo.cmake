
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chase/chase.cc" "src/chase/CMakeFiles/floq_chase.dir/chase.cc.o" "gcc" "src/chase/CMakeFiles/floq_chase.dir/chase.cc.o.d"
  "/root/repo/src/chase/dependencies.cc" "src/chase/CMakeFiles/floq_chase.dir/dependencies.cc.o" "gcc" "src/chase/CMakeFiles/floq_chase.dir/dependencies.cc.o.d"
  "/root/repo/src/chase/generic_chase.cc" "src/chase/CMakeFiles/floq_chase.dir/generic_chase.cc.o" "gcc" "src/chase/CMakeFiles/floq_chase.dir/generic_chase.cc.o.d"
  "/root/repo/src/chase/graph_dot.cc" "src/chase/CMakeFiles/floq_chase.dir/graph_dot.cc.o" "gcc" "src/chase/CMakeFiles/floq_chase.dir/graph_dot.cc.o.d"
  "/root/repo/src/chase/sigma_fl.cc" "src/chase/CMakeFiles/floq_chase.dir/sigma_fl.cc.o" "gcc" "src/chase/CMakeFiles/floq_chase.dir/sigma_fl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datalog/CMakeFiles/floq_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/floq_query.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/floq_term.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/floq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
