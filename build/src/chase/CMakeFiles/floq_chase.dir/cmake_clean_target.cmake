file(REMOVE_RECURSE
  "libfloq_chase.a"
)
