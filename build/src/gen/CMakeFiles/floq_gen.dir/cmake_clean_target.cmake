file(REMOVE_RECURSE
  "libfloq_gen.a"
)
