# Empty compiler generated dependencies file for floq_gen.
# This may be replaced when dependencies are built.
