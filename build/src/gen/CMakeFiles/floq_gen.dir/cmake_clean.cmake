file(REMOVE_RECURSE
  "CMakeFiles/floq_gen.dir/generators.cc.o"
  "CMakeFiles/floq_gen.dir/generators.cc.o.d"
  "libfloq_gen.a"
  "libfloq_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floq_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
