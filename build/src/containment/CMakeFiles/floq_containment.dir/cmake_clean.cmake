file(REMOVE_RECURSE
  "CMakeFiles/floq_containment.dir/classifier.cc.o"
  "CMakeFiles/floq_containment.dir/classifier.cc.o.d"
  "CMakeFiles/floq_containment.dir/containment.cc.o"
  "CMakeFiles/floq_containment.dir/containment.cc.o.d"
  "CMakeFiles/floq_containment.dir/explain.cc.o"
  "CMakeFiles/floq_containment.dir/explain.cc.o.d"
  "CMakeFiles/floq_containment.dir/homomorphism.cc.o"
  "CMakeFiles/floq_containment.dir/homomorphism.cc.o.d"
  "CMakeFiles/floq_containment.dir/minimize.cc.o"
  "CMakeFiles/floq_containment.dir/minimize.cc.o.d"
  "CMakeFiles/floq_containment.dir/views.cc.o"
  "CMakeFiles/floq_containment.dir/views.cc.o.d"
  "libfloq_containment.a"
  "libfloq_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floq_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
