
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/containment/classifier.cc" "src/containment/CMakeFiles/floq_containment.dir/classifier.cc.o" "gcc" "src/containment/CMakeFiles/floq_containment.dir/classifier.cc.o.d"
  "/root/repo/src/containment/containment.cc" "src/containment/CMakeFiles/floq_containment.dir/containment.cc.o" "gcc" "src/containment/CMakeFiles/floq_containment.dir/containment.cc.o.d"
  "/root/repo/src/containment/explain.cc" "src/containment/CMakeFiles/floq_containment.dir/explain.cc.o" "gcc" "src/containment/CMakeFiles/floq_containment.dir/explain.cc.o.d"
  "/root/repo/src/containment/homomorphism.cc" "src/containment/CMakeFiles/floq_containment.dir/homomorphism.cc.o" "gcc" "src/containment/CMakeFiles/floq_containment.dir/homomorphism.cc.o.d"
  "/root/repo/src/containment/minimize.cc" "src/containment/CMakeFiles/floq_containment.dir/minimize.cc.o" "gcc" "src/containment/CMakeFiles/floq_containment.dir/minimize.cc.o.d"
  "/root/repo/src/containment/views.cc" "src/containment/CMakeFiles/floq_containment.dir/views.cc.o" "gcc" "src/containment/CMakeFiles/floq_containment.dir/views.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chase/CMakeFiles/floq_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/floq_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/floq_query.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/floq_term.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/floq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
