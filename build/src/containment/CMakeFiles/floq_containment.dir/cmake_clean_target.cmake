file(REMOVE_RECURSE
  "libfloq_containment.a"
)
