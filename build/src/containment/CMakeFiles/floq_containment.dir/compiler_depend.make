# Empty compiler generated dependencies file for floq_containment.
# This may be replaced when dependencies are built.
