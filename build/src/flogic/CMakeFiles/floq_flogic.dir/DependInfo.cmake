
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flogic/lexer.cc" "src/flogic/CMakeFiles/floq_flogic.dir/lexer.cc.o" "gcc" "src/flogic/CMakeFiles/floq_flogic.dir/lexer.cc.o.d"
  "/root/repo/src/flogic/parser.cc" "src/flogic/CMakeFiles/floq_flogic.dir/parser.cc.o" "gcc" "src/flogic/CMakeFiles/floq_flogic.dir/parser.cc.o.d"
  "/root/repo/src/flogic/printer.cc" "src/flogic/CMakeFiles/floq_flogic.dir/printer.cc.o" "gcc" "src/flogic/CMakeFiles/floq_flogic.dir/printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/floq_query.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/floq_term.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/floq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
