file(REMOVE_RECURSE
  "CMakeFiles/floq_flogic.dir/lexer.cc.o"
  "CMakeFiles/floq_flogic.dir/lexer.cc.o.d"
  "CMakeFiles/floq_flogic.dir/parser.cc.o"
  "CMakeFiles/floq_flogic.dir/parser.cc.o.d"
  "CMakeFiles/floq_flogic.dir/printer.cc.o"
  "CMakeFiles/floq_flogic.dir/printer.cc.o.d"
  "libfloq_flogic.a"
  "libfloq_flogic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floq_flogic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
