file(REMOVE_RECURSE
  "libfloq_flogic.a"
)
