# Empty compiler generated dependencies file for floq_flogic.
# This may be replaced when dependencies are built.
