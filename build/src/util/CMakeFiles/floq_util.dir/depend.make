# Empty dependencies file for floq_util.
# This may be replaced when dependencies are built.
