file(REMOVE_RECURSE
  "CMakeFiles/floq_util.dir/status.cc.o"
  "CMakeFiles/floq_util.dir/status.cc.o.d"
  "CMakeFiles/floq_util.dir/strings.cc.o"
  "CMakeFiles/floq_util.dir/strings.cc.o.d"
  "libfloq_util.a"
  "libfloq_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floq_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
