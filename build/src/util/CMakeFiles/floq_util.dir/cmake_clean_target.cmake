file(REMOVE_RECURSE
  "libfloq_util.a"
)
