file(REMOVE_RECURSE
  "CMakeFiles/floq_datalog.dir/evaluator.cc.o"
  "CMakeFiles/floq_datalog.dir/evaluator.cc.o.d"
  "CMakeFiles/floq_datalog.dir/fact_index.cc.o"
  "CMakeFiles/floq_datalog.dir/fact_index.cc.o.d"
  "CMakeFiles/floq_datalog.dir/match.cc.o"
  "CMakeFiles/floq_datalog.dir/match.cc.o.d"
  "libfloq_datalog.a"
  "libfloq_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floq_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
