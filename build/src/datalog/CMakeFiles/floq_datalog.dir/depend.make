# Empty dependencies file for floq_datalog.
# This may be replaced when dependencies are built.
