
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/evaluator.cc" "src/datalog/CMakeFiles/floq_datalog.dir/evaluator.cc.o" "gcc" "src/datalog/CMakeFiles/floq_datalog.dir/evaluator.cc.o.d"
  "/root/repo/src/datalog/fact_index.cc" "src/datalog/CMakeFiles/floq_datalog.dir/fact_index.cc.o" "gcc" "src/datalog/CMakeFiles/floq_datalog.dir/fact_index.cc.o.d"
  "/root/repo/src/datalog/match.cc" "src/datalog/CMakeFiles/floq_datalog.dir/match.cc.o" "gcc" "src/datalog/CMakeFiles/floq_datalog.dir/match.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/floq_query.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/floq_term.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/floq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
