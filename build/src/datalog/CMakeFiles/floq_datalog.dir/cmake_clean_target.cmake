file(REMOVE_RECURSE
  "libfloq_datalog.a"
)
