file(REMOVE_RECURSE
  "CMakeFiles/floq_query.dir/conjunctive_query.cc.o"
  "CMakeFiles/floq_query.dir/conjunctive_query.cc.o.d"
  "CMakeFiles/floq_query.dir/parser.cc.o"
  "CMakeFiles/floq_query.dir/parser.cc.o.d"
  "libfloq_query.a"
  "libfloq_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floq_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
