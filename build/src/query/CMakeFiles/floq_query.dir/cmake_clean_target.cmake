file(REMOVE_RECURSE
  "libfloq_query.a"
)
