# Empty compiler generated dependencies file for floq_query.
# This may be replaced when dependencies are built.
