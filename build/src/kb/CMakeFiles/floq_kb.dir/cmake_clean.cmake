file(REMOVE_RECURSE
  "CMakeFiles/floq_kb.dir/knowledge_base.cc.o"
  "CMakeFiles/floq_kb.dir/knowledge_base.cc.o.d"
  "libfloq_kb.a"
  "libfloq_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floq_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
