file(REMOVE_RECURSE
  "libfloq_kb.a"
)
