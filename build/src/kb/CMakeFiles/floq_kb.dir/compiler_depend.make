# Empty compiler generated dependencies file for floq_kb.
# This may be replaced when dependencies are built.
