file(REMOVE_RECURSE
  "libfloq_term.a"
)
