# Empty dependencies file for floq_term.
# This may be replaced when dependencies are built.
