file(REMOVE_RECURSE
  "CMakeFiles/floq_term.dir/atom.cc.o"
  "CMakeFiles/floq_term.dir/atom.cc.o.d"
  "CMakeFiles/floq_term.dir/predicate.cc.o"
  "CMakeFiles/floq_term.dir/predicate.cc.o.d"
  "libfloq_term.a"
  "libfloq_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floq_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
