// SPARQL bridge: the paper's §1 claim that its results "apply to SPARQL
// as well", made executable. Loads an RDF(S) graph, answers SPARQL
// meta-queries through the F-logic Lite semantics, and decides BGP
// containment.
//
//   build/examples/sparql_meta

#include <cstdio>

#include "rdf/rdf_graph.h"
#include "rdf/sparql.h"
#include "term/world.h"

int main() {
  using namespace floq;
  World world;

  rdf::RdfGraph graph;
  Status loaded = graph.LoadText(R"(
    # schema
    grad_student rdfs:subClassOf student
    student rdfs:subClassOf person
    advisor rdfs:domain grad_student
    advisor rdfs:range professor
    advisor rdf:type owl:FunctionalProperty
    name rdfs:domain person
    name rdfs:range string
    name rdf:type floq:MandatoryProperty

    # data
    kim rdf:type grad_student
    kim advisor prof_lee
    kim name 'Kim'
    prof_lee rdf:type professor
    prof_lee name 'Lee'
  )");
  if (!loaded.ok()) {
    std::printf("load error: %s\n", loaded.ToString().c_str());
    return 1;
  }

  KnowledgeBase kb(world);
  if (!graph.Populate(kb).ok()) return 1;
  SaturateOptions options;
  options.mandatory_completion_rounds = 3;
  if (!kb.Saturate(options).ok()) return 1;
  std::printf("knowledge base: %u facts after saturation\n\n", kb.size());

  // A mixed data/meta SPARQL query: people and the classes they belong to.
  Result<ConjunctiveQuery> members = rdf::ParseSparql(
      world, "SELECT ?x ?c WHERE { ?c rdfs:subClassOf person . "
             "?x rdf:type ?c }");
  if (!members.ok()) {
    std::printf("%s\n", members.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<std::vector<Term>>> answers = kb.Answer(*members);
  std::printf("?x in subclasses ?c of person:\n");
  for (const auto& tuple : *answers) {
    std::printf("  %s : %s\n", world.NameOf(tuple[0]).c_str(),
                world.NameOf(tuple[1]).c_str());
  }

  // BGP containment under the RDFS/F-logic semantics.
  struct Pair {
    const char* description;
    const char* q1;
    const char* q2;
  };
  const Pair pairs[] = {
      {"subclass members ⊆ person members",
       "SELECT ?x WHERE { ?c rdfs:subClassOf person . ?x rdf:type ?c }",
       "SELECT ?x WHERE { ?x rdf:type person }"},
      {"functional range-typed properties ⊆ range-typed properties",
       "SELECT ?p WHERE { ?p rdfs:range professor . ?p rdf:type "
       "owl:FunctionalProperty }",
       "SELECT ?p WHERE { ?p rdfs:range professor }"},
      {"person members ⊆ subclass members (reverse, must fail)",
       "SELECT ?x WHERE { ?x rdf:type person }",
       "SELECT ?x WHERE { ?c rdfs:subClassOf person . ?x rdf:type ?c }"},
  };

  std::printf("\nBGP containment under Sigma_FL:\n");
  for (const Pair& pair : pairs) {
    Result<ContainmentResult> result =
        rdf::CheckSparqlContainment(world, pair.q1, pair.q2);
    std::printf("  %-55s %s\n", pair.description,
                result.ok() && result->contained ? "CONTAINED" : "not contained");
  }
  return 0;
}
