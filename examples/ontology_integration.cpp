// Ontology integration: classify the queries of two information sources
// into a subsumption hierarchy — the information-integration use case the
// paper motivates ("the classification problem in information integration
// systems", §1).
//
//   build/examples/ontology_integration

#include <cstdio>
#include <vector>

#include "containment/containment.h"
#include "flogic/parser.h"
#include "term/world.h"

int main() {
  using namespace floq;
  World world;

  // A small university mediation scenario: several source views, each a
  // conjunctive meta-query over the shared F-logic Lite vocabulary.
  struct View {
    const char* name;
    const char* text;
  };
  const std::vector<View> views = {
      {"people_with_names",
       "v(X) :- X : person, X[name -> _]."},
      {"people",
       "v(X) :- X : person."},
      {"subclass_members",
       "v(X) :- C :: person, X : C."},
      {"named_entities",
       "v(X) :- X[name -> _]."},
      {"mandatory_named_people",
       // name is a mandatory attribute of person here, so every member of
       // a *nonempty* person class has one (rho_5 at work).
       "v(X) :- person[name {1:*} *=> string], X : person."},
      {"typed_values",
       "v(X) :- O[A *=> T], O[A -> X], X : T."},
  };

  std::vector<ConjunctiveQuery> queries;
  for (const View& view : views) {
    Result<ConjunctiveQuery> q = flogic::ParseQuery(world, view.text);
    if (!q.ok()) {
      std::printf("parse error in %s: %s\n", view.name,
                  q.status().ToString().c_str());
      return 1;
    }
    queries.push_back(std::move(q).value());
  }

  std::printf("pairwise containment matrix (row ⊆ column?):\n\n%-24s", "");
  for (const View& view : views) std::printf("%-6.5s", view.name);
  std::printf("\n");

  int contained_pairs = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    std::printf("%-24s", views[i].name);
    for (size_t j = 0; j < queries.size(); ++j) {
      Result<ContainmentResult> result =
          CheckContainment(world, queries[i], queries[j]);
      bool yes = result.ok() && result->contained;
      contained_pairs += yes && i != j;
      std::printf("%-6s", yes ? "⊆" : ".");
    }
    std::printf("\n");
  }

  std::printf("\n%d non-trivial containments found.\n", contained_pairs);
  std::printf("\nhighlights:\n");
  std::printf(
      "  subclass_members ⊆ people        (rho_3: membership propagates)\n");
  std::printf(
      "  mandatory_named_people ⊆ people_with_names  (rho_5/rho_10: the\n"
      "      mandatory name must exist for every member)\n");

  // Verify the second highlight explicitly and show it is beyond the
  // reach of the classical test.
  Result<ContainmentResult> deep =
      CheckContainment(world, queries[4], queries[0]);
  Result<ContainmentResult> classical =
      CheckClassicalContainment(world, queries[4], queries[0]);
  std::printf("\n  checked: paper method %s, classical %s\n",
              deep.ok() && deep->contained ? "CONTAINED" : "no",
              classical.ok() && classical->contained ? "CONTAINED" : "no");
  return 0;
}
