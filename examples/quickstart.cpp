// Quickstart: the paper's Section 2 examples end to end.
//
//   build/examples/quickstart
//
// Parses two F-logic meta-queries in the paper's surface syntax, decides
// containment under Sigma_FL, and prints the witness homomorphism.

#include <cstdio>

#include "containment/containment.h"
#include "flogic/parser.h"
#include "flogic/printer.h"
#include "term/world.h"

int main() {
  using namespace floq;
  World world;

  // The "joinable attribute pairs" example: q finds attribute pairs (A,B)
  // joinable through a subclass hop; qq without the hop.
  ConjunctiveQuery q = *flogic::ParseQuery(
      world, "q(A, B) :- T1[A *=> T2], T2 :: T3, T3[B *=> _].");
  ConjunctiveQuery qq = *flogic::ParseQuery(
      world, "qq(A, B) :- T1[A *=> T2], T2[B *=> _].");

  std::printf("q  = %s\n", flogic::QueryToSurface(q, world).c_str());
  std::printf("qq = %s\n\n", flogic::QueryToSurface(qq, world).c_str());

  Result<ContainmentResult> result = CheckContainment(world, q, qq);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("q ⊆ qq under Sigma_FL?  %s\n",
              result->contained ? "YES" : "no");
  std::printf("chase(q): %u conjuncts, level bound %d\n",
              result->chase.size(), result->level_bound);
  if (result->witness.has_value()) {
    std::printf("witness homomorphism body(qq) -> chase(q):\n");
    for (const auto& [from, to] : result->witness->entries()) {
      std::printf("  %s -> %s\n", world.NameOf(from).c_str(),
                  world.NameOf(to).c_str());
    }
  }

  // The containment is invisible to classical (constraint-free) reasoning.
  Result<ContainmentResult> classical =
      CheckClassicalContainment(world, q, qq);
  std::printf("\nq ⊆ qq classically (no constraints)?  %s\n",
              classical.ok() && classical->contained ? "YES" : "no");

  // And the reverse direction fails, with the chase as counterexample.
  Result<ContainmentResult> reverse = CheckContainment(world, qq, q);
  std::printf("qq ⊆ q under Sigma_FL?  %s\n",
              reverse.ok() && reverse->contained ? "YES" : "no");

  std::printf("\nchase of q (the canonical database):\n%s",
              result->chase.DebugString(world).c_str());
  return 0;
}
