// Query optimization with Sigma_FL-containment: minimize a redundant
// meta-query, then show that the slimmer query computes the same answers
// on a knowledge base with measurably less join work.
//
//   build/examples/query_optimizer

#include <cstdio>

#include "containment/minimize.h"
#include "datalog/evaluator.h"
#include "flogic/parser.h"
#include "flogic/printer.h"
#include "kb/knowledge_base.h"
#include "term/world.h"

int main() {
  using namespace floq;
  World world;

  // A query written against the ontology with "defensive" atoms a naive
  // client might add: the membership in the superclass and the typing of
  // the value are both implied by Sigma_FL.
  ConjunctiveQuery query = *flogic::ParseQuery(
      world,
      "q(S, V) :- S : grad_student, grad_student :: student, "
      "S : student, student[thesis *=> document], "
      "S[thesis -> V], V : document.");

  std::printf("original (%d atoms):\n  %s\n\n", query.size(),
              flogic::QueryToSurface(query, world).c_str());

  MinimizeStats stats;
  Result<ConjunctiveQuery> minimal = MinimizeQuery(world, query, {}, &stats);
  if (!minimal.ok()) {
    std::printf("error: %s\n", minimal.status().ToString().c_str());
    return 1;
  }
  std::printf("minimized (%d atoms, %d removed, %d containment checks):\n"
              "  %s\n\n",
              minimal->size(), stats.atoms_removed, stats.containment_checks,
              flogic::QueryToSurface(*minimal, world).c_str());

  // Build a knowledge base and compare evaluations.
  KnowledgeBase kb(world);
  Status loaded = kb.Load(R"(
    grad_student :: student.
    student :: person.
    student[thesis *=> document].
    ann : grad_student.
    bob : grad_student.
    cid : student.
    ann[thesis -> t1]. t1 : document.
    bob[thesis -> t2]. t2 : document.
    cid[thesis -> t3]. t3 : document.
  )");
  if (!loaded.ok()) {
    std::printf("load error: %s\n", loaded.ToString().c_str());
    return 1;
  }
  Result<ConsistencyReport> report = kb.Saturate();
  if (!report.ok()) return 1;

  MatchStats original_stats, minimal_stats;
  auto original_answers =
      EvaluateQuery(kb.database(), query, &original_stats);
  auto minimal_answers =
      EvaluateQuery(kb.database(), *minimal, &minimal_stats);

  std::printf("answers: original %zu, minimized %zu (%s)\n",
              original_answers.size(), minimal_answers.size(),
              original_answers == minimal_answers ? "identical"
                                                  : "DIFFERENT!");
  for (const auto& tuple : minimal_answers) {
    std::printf("  (%s, %s)\n", world.NameOf(tuple[0]).c_str(),
                world.NameOf(tuple[1]).c_str());
  }
  std::printf("join search nodes: original %llu, minimized %llu\n",
              (unsigned long long)original_stats.nodes_visited,
              (unsigned long long)minimal_stats.nodes_visited);
  return 0;
}
