// Conceptual design to reasoning in one pipeline: an Entity-Relationship
// schema (the design methodology the paper's introduction points at)
// compiles into F-logic Lite, and the containment checker then answers
// design-level questions — which queries subsume which under the
// constraints the diagram encodes.
//
//   build/examples/er_design

#include <cstdio>

#include "containment/containment.h"
#include "er/er_schema.h"
#include "kb/knowledge_base.h"
#include "query/parser.h"
#include "term/world.h"

int main() {
  using namespace floq;

  const char* kSchema = R"(
    entity person {
      attribute name : string;
      attribute age : number optional;
    }
    entity student isa person {
      attribute major : string;
    }
    entity course {
      attribute title : string;
    }
    relationship enrolled {
      role who : student mandatory;   % total participation
      role what : course;
      attribute grade : number optional;
    }
  )";

  Result<er::ErSchema> schema = er::ParseErSchema(kSchema);
  if (!schema.ok()) {
    std::printf("schema error: %s\n", schema.status().ToString().c_str());
    return 1;
  }
  World world;
  std::vector<Atom> schema_facts = schema->ToFacts(world);
  std::printf("E-R schema compiled to %zu F-logic Lite facts, e.g.:\n",
              schema_facts.size());
  for (size_t i = 0; i < schema_facts.size() && i < 6; ++i) {
    std::printf("  %s\n", schema_facts[i].ToString(world).c_str());
  }

  // Design question 1: does being a student already imply being enrolled
  // in something? (Total participation says yes.)
  auto with_schema = [&](const char* text) {
    ConjunctiveQuery q = *ParseQuery(world, text);
    std::vector<Atom> body = q.body();
    body.insert(body.end(), schema_facts.begin(), schema_facts.end());
    return ConjunctiveQuery(q.name(), q.head(), std::move(body));
  };
  ConjunctiveQuery students = with_schema("q(S) :- member(S, student).");
  ConjunctiveQuery enrolled_students = *ParseQuery(
      world,
      "q(S) :- data(S, who_of_enrolled, E), data(E, what, C), "
      "member(C, course).");

  Result<ContainmentResult> q1 =
      CheckContainment(world, students, enrolled_students);
  std::printf("\n[1] students ⊆ students-enrolled-in-some-course?  %s\n",
              q1.ok() && q1->contained ? "YES (total participation + "
                                         "mandatory role fillers)"
                                       : "no");

  // Design question 2: the reverse cannot hold — enrollment does not make
  // every enrollee the subject of *every* course.
  Result<ContainmentResult> q2 =
      CheckContainment(world, enrolled_students, students);
  std::printf("[2] the reverse direction?  %s\n",
              q2.ok() && q2->contained ? "YES" : "no (as expected: the body "
                                                 "does not force membership)");

  // Design question 3: instance-level check — load data and verify the
  // diagram's constraints catch a double-grade.
  KnowledgeBase kb(world);
  for (const Atom& fact : schema_facts) {
    if (!kb.AddFact(fact).ok()) return 1;
  }
  Status loaded = kb.Load(R"(
    ann : student. db : course.
    e1 : enrolled. e1[who -> ann, what -> db, grade -> 95].
    e1[grade -> 87].
  )");
  if (!loaded.ok()) return 1;
  Result<ConsistencyReport> report = kb.Saturate();
  if (!report.ok()) return 1;
  std::printf("[3] instance with two grades for one enrollment: %s\n",
              report->consistent ? "accepted?!" : "REJECTED (grade is "
                                                  "functional)");
  for (const std::string& violation : report->funct_violations) {
    std::printf("    %s\n", violation.c_str());
  }
  return 0;
}
