// Schema explorer: meta-querying a saturated F-logic Lite knowledge base,
// in the style of the paper's §2 examples (the FLORA-2-ish use case).
// Shows schema browsing, mixed meta/data queries, consistency reporting,
// and mandatory-attribute completion.
//
//   build/examples/schema_explorer

#include <cstdio>

#include "flogic/printer.h"
#include "kb/knowledge_base.h"
#include "term/world.h"

namespace {

void Run(floq::KnowledgeBase& kb, const char* title, const char* query) {
  using namespace floq;
  std::printf("?- %s\n", query);
  Result<std::vector<std::vector<Term>>> answers = kb.Answer(query);
  if (!answers.ok()) {
    std::printf("   error: %s\n", answers.status().ToString().c_str());
    return;
  }
  if (answers->empty()) {
    std::printf("   (no answers)   %% %s\n\n", title);
    return;
  }
  for (const auto& tuple : *answers) {
    std::printf("   ");
    for (size_t i = 0; i < tuple.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  kb.world().NameOf(tuple[i]).c_str());
    }
    std::printf("\n");
  }
  std::printf("   %% %s\n\n", title);
}

}  // namespace

int main() {
  using namespace floq;
  World world;
  KnowledgeBase kb(world);

  Status loaded = kb.Load(R"(
    % ---- schema: the paper's university domain -------------------------
    freshman :: student.
    student :: person.
    employee :: person.
    person[name {1:*} *=> string].
    person[age {0:1} *=> number].
    student[major *=> string].
    employee[salary {1:1} *=> number].

    % ---- data ----------------------------------------------------------
    john : freshman.
    mary : student.
    sue : employee.
    john[name -> 'John Smith', age -> 33].
    mary[name -> 'Mary Poppins', major -> 'databases'].
    sue[name -> 'Sue Storm', salary -> 90000].
    33 : number. 90000 : number.
  )");
  if (!loaded.ok()) {
    std::printf("load error: %s\n", loaded.ToString().c_str());
    return 1;
  }

  SaturateOptions options;
  options.mandatory_completion_rounds = 4;
  Result<ConsistencyReport> report = kb.Saturate(options);
  if (!report.ok()) {
    std::printf("saturation error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("saturated: %u facts, consistent: %s\n\n", kb.size(),
              report->consistent ? "yes" : "NO");

  // The paper's §2 example meta-queries.
  Run(kb, "subclasses of person (pure meta-query)", "X :: person");
  Run(kb, "string-typed attributes of class student",
      "student[Att *=> string]");
  Run(kb, "mixed meta/data: john's string attributes per student's schema",
      "student[Att *=> string], john[Att -> Val]");
  Run(kb, "mandatory attributes per class (schema browsing)",
      "C[Att {1:*} *=> _], C :: person");
  Run(kb, "objects with a functional attribute and its value",
      "O[A {0:1} *=> _], O[A -> V], O : person");
  Run(kb, "typed values: every (object, attribute, value, type) square",
      "q(O, A, V, T) :- O[A *=> T], O[A -> V], V : T.");

  // Break consistency on purpose and report it.
  std::printf("---- injecting a functional-attribute violation ----\n");
  if (!kb.Load("sue[salary -> 95000]. 95000 : number.").ok()) return 1;
  report = kb.Saturate(options);
  if (!report.ok()) return 1;
  std::printf("consistent now: %s\n", report->consistent ? "yes" : "NO");
  for (const std::string& violation : report->funct_violations) {
    std::printf("  violation: %s\n", violation.c_str());
  }
  return 0;
}
