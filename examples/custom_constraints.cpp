// Beyond F-logic Lite: containment under *user-supplied* dependency sets,
// the generalization the paper's conclusion asks for. A company schema is
// written as TGDs/EGDs; weak acyclicity certifies chase termination, so
// the Theorem-4 containment test is a complete decision procedure here.
//
//   build/examples/custom_constraints

#include <cstdio>

#include "chase/dependencies.h"
#include "chase/generic_chase.h"
#include "containment/containment.h"
#include "query/parser.h"
#include "term/world.h"

int main() {
  using namespace floq;
  World world;

  const char* kConstraints = R"(
    % every employee is a person and works in some department
    person(X) :- employee(X).
    works_in(X, D) :- employee(X).
    dept(D) :- works_in(X, D).
    % every department is led by some person
    led_by(D, M) :- dept(D).
    person(M) :- led_by(D, M).
    % a department has at most one lead (key EGD)
    M1 = M2 :- led_by(D, M1), led_by(D, M2).
  )";

  Result<DependencySet> deps = ParseDependencies(world, kConstraints);
  if (!deps.ok()) {
    std::printf("parse error: %s\n", deps.status().ToString().c_str());
    return 1;
  }
  std::printf("dependency set: %zu TGDs, %zu EGDs\n", deps->tgds.size(),
              deps->egds.size());
  std::printf("weakly acyclic: %s  (chase termination certified)\n\n",
              IsWeaklyAcyclic(*deps, world) ? "YES" : "no");

  struct Case {
    const char* what;
    const char* q1;
    const char* q2;
  };
  const Case cases[] = {
      {"employees ⊆ people-working-under-a-lead",
       "q(X) :- employee(X).",
       "q(X) :- works_in(X, D), led_by(D, M), person(M)."},
      {"the reverse (must fail, conclusively)",
       "q(X) :- works_in(X, D), led_by(D, M), person(M).",
       "q(X) :- employee(X)."},
      {"two leads of one department coincide",
       "q(M1, M2) :- led_by(d0, M1), led_by(d0, M2).",
       "q(M, M) :- led_by(d0, M)."},
  };

  for (const Case& c : cases) {
    ConjunctiveQuery q1 = *ParseQuery(world, c.q1);
    ConjunctiveQuery q2 = *ParseQuery(world, c.q2);
    Result<ContainmentResult> result =
        CheckContainmentUnderDependencies(world, q1, q2, *deps);
    if (!result.ok()) {
      std::printf("%-45s error: %s\n", c.what,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-45s %s%s\n", c.what,
                result->contained ? "CONTAINED" : "not contained",
                result->conclusive ? "" : " (inconclusive)");
  }

  // Show the chase itself for the first query.
  ConjunctiveQuery q = *ParseQuery(world, "q(X) :- employee(X).");
  ChaseResult chase = GenericChase(world, q, *deps);
  std::printf("\nchase of q(X) :- employee(X) under the constraints:\n%s",
              chase.DebugString(world).c_str());
  return 0;
}
