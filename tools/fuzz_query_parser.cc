// libFuzzer target for the predicate-notation query parser (FLOQ_FUZZ=ON,
// Clang only). Every entry point must return a clean Status on arbitrary
// bytes — any assertion failure, sanitizer report, or hang is a finding.
//
//   clang++ -fsanitize=fuzzer,address ...   (via -DFLOQ_FUZZ=ON)
//   ./fuzz_query_parser testdata/ -max_total_time=60

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "query/parser.h"
#include "term/world.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  {
    floq::World world;
    (void)floq::ParseQuery(world, text);
  }
  {
    floq::World world;
    (void)floq::ParseQueryAllowUnsafeHead(world, text);
  }
  {
    floq::World world;
    (void)floq::ParseQueries(world, text);
  }
  {
    floq::World world;
    (void)floq::ParseAtoms(world, text);
  }
  return 0;
}
