// libFuzzer target for the F-logic surface parser (FLOQ_FUZZ=ON, Clang
// only). Seeds: the .fl files under testdata/. Any assertion failure,
// sanitizer report, or hang on arbitrary bytes is a finding.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "flogic/parser.h"
#include "term/world.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  {
    floq::World world;
    (void)floq::flogic::ParseProgram(world, text);
  }
  {
    floq::World world;
    (void)floq::flogic::ParseProgramLenient(world, text);
  }
  {
    floq::World world;
    (void)floq::flogic::ParseQuery(world, text);
  }
  {
    floq::World world;
    (void)floq::flogic::ParseFormula(world, text);
  }
  return 0;
}
