// libFuzzer target for the `floq serve` wire layer (FLOQ_FUZZ=ON, Clang
// only): the incremental frame decoder and the JSON parser, the two
// components that consume untrusted socket bytes before any typed
// handling. Every path must return a clean Status — any assertion
// failure, sanitizer report, or hang is a finding.
//
//   clang++ -fsanitize=fuzzer,address ...   (via -DFLOQ_FUZZ=ON)
//   ./fuzz_protocol testdata/ -max_total_time=60

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "server/protocol.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);

  // Raw bytes straight into the JSON parser.
  if (floq::Result<floq::server::Json> parsed = floq::server::ParseJson(text);
      parsed.ok()) {
    // A successful parse must re-serialize, and the result must parse
    // again (serialization round-trips its own output).
    std::string round = parsed->Serialize();
    (void)floq::server::ParseJson(round);
  }

  // The same bytes as a socket stream, fed to the decoder in two chunks
  // to exercise the partial-frame buffering, then each decoded payload
  // into the parser — the exact path a connection handler runs.
  floq::server::FrameDecoder decoder;
  size_t half = size / 2;
  decoder.Append(reinterpret_cast<const char*>(data), half);
  decoder.Append(reinterpret_cast<const char*>(data) + half, size - half);
  for (;;) {
    floq::Result<std::optional<std::string>> frame = decoder.Next();
    if (!frame.ok() || !frame->has_value()) break;
    (void)floq::server::ParseJson(**frame);
  }

  // And framed properly: EncodeFrame output must always decode to the
  // identical payload.
  floq::server::FrameDecoder reframe;
  if (size <= floq::server::kMaxFrameBytes) {
    std::string framed = floq::server::EncodeFrame(text);
    reframe.Append(framed.data(), framed.size());
    floq::Result<std::optional<std::string>> back = reframe.Next();
    if (!back.ok() || !back->has_value() || **back != text) {
      __builtin_trap();
    }
  }
  return 0;
}
