// floq — command-line front end to the containment checker.
//
//   floq check <queries.fl>            decide q1 ⊆ q2 for the first two
//                                      rules in the file, with explanation
//   floq explain <queries.fl> [--profile] [--chase-dot FILE]
//                                      like check, plus a per-stage cost
//                                      table and a chase-graph DOT export
//   floq classify <queries.fl>         containment taxonomy of all rules
//   floq chase <queries.fl> [N]        chase the first rule to level N
//                                      (default 12) and dump the graph
//   floq dot <queries.fl> [N]          same, as Graphviz DOT on stdout
//   floq minimize <queries.fl>         minimize every rule under Sigma_FL
//   floq query <kb.fl> <query text>    answer a query over a knowledge base
//   floq consistency <kb.fl>           saturate and report rho_4/rho_5
//   floq lint [--json] [--deps d.fl] [--fail-on SEV] [file.fl]
//                                      static diagnostics: query lints,
//                                      termination analyses (FLD103 finds
//                                      mandatory-attribute cycles);
//                                      --fail-on {error,warn,note} sets
//                                      the severity that exits 2 (default
//                                      error); with --kb-snapshot the
//                                      file is treated as a knowledge
//                                      base and FLD103 runs against the
//                                      (possibly snapshot-restored) store
//   floq analyze [--json] [--deps d.fl] [file.fl]
//                                      static cost & boundedness report
//                                      (DESIGN.md §15): per-query chase
//                                      growth and hom fan-out estimates
//                                      (FLD202/FLD203), fact-base
//                                      null-generation grade, and — with
//                                      --deps — the dependency set's
//                                      degree table (FLD101/102/201)
//   floq serve <dir> [--socket PATH] [--workers N] [--queue-limit N]
//                                      crash-safe containment daemon
//                                      (DESIGN.md §16): durable query
//                                      registry in <dir>, length-prefixed
//                                      JSON protocol over an AF_UNIX
//                                      socket; SIGTERM drains gracefully
//   floq client --socket PATH <sub> [args]
//                                      one request against a running
//                                      daemon: register/unregister/
//                                      contain/classify/lint/status/
//                                      metrics/ping/shutdown; prints the
//                                      raw JSON response (`metrics
//                                      --format prometheus` prints text
//                                      exposition instead)
//   floq top --socket PATH [--interval-ms N] [--count N] [--no-clear]
//                                      live metrics console over a running
//                                      daemon: request rates, per-command
//                                      latency quantiles, queue depth, WAL
//                                      lag, refreshed from SnapshotDelta
//                                      (alias: floq client watch)
//
// Exit codes (uniform across commands, DESIGN.md §16.5):
//   0   success: contained / consistent / no lint findings / request ok
//   2   definite negative: NOT_CONTAINED, inconsistent, or a diagnostic
//       at or above --fail-on fired — never an error
//   3   UNKNOWN: a resource budget tripped (or the daemon shed the
//       request as OVERLOADED) before the check was decided
//   4   operational failure: unreadable file, parse error, I/O or
//       protocol error — never a verdict
//   64  usage error
//
// Files use the F-logic surface syntax (see README). Everything runs under
// the F-logic Lite semantics Sigma_FL of Calì & Kifer (VLDB'06).
//
// Global flags (anywhere after the command):
//   --jobs N           worker threads for the batch commands (0 = cores)
//   --no-prune         disable the stage-0 signature prefilter in the
//                      batch commands (classify, views); verdicts are
//                      identical either way, only slower
//   --timeout-ms N     wall-clock budget per containment check; a tripped
//                      budget renders as UNKNOWN (exit 3), never as a
//                      wrong definite verdict
//   --hom-steps N      cap on homomorphism-search steps per check
//   --metrics-out F    enable the metrics registry and write its JSON
//                      snapshot to F when the command finishes
//   --trace-out F      record scoped spans and write Chrome trace_event
//                      JSON to F (loads in chrome://tracing / Perfetto)
//   --cost-schedule    classify: run the batch pipeline in ascending
//                      predicted-cost order with calibrated hom budgets
//                      (analysis/cost_model.h); verdicts are unchanged,
//                      only the schedule
//   --kb-snapshot F    for the KB commands (query, consistency, lint):
//                      when F exists, restore the knowledge base from it
//                      (one mmap — parsing is skipped, and saturation
//                      too if the snapshot recorded a saturated store);
//                      otherwise build the KB from <kb.fl> as usual and
//                      write F afterwards. See DESIGN.md §14.3.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/boundedness.h"
#include "analysis/cost_model.h"
#include "analysis/dependency_lints.h"
#include "chase/chase.h"
#include "chase/dependencies.h"
#include "chase/graph_dot.h"
#include "containment/classifier.h"
#include "containment/containment.h"
#include "containment/explain.h"
#include "containment/minimize.h"
#include "containment/views.h"
#include "flogic/parser.h"
#include "flogic/printer.h"
#include "kb/knowledge_base.h"
#include "server/daemon.h"
#include "server/protocol.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/trace.h"
#include "term/world.h"

#include <optional>

namespace {

using namespace floq;

// Uniform exit codes (documented in README "Exit codes"):
//   0  success / contained / no lint findings
//   2  definite negative: not contained, or a lint diagnostic at or above
//      the --fail-on severity fired
//   3  UNKNOWN: a resource budget tripped before the check was decided
//   4  operational failure: unreadable file, parse error, I/O or
//      protocol error (never a verdict)
//   64 usage error
constexpr int kExitOk = 0;
constexpr int kExitNo = 2;
constexpr int kExitUnknown = 3;
constexpr int kExitIo = 4;

int Fail(const std::string& message) {
  std::fprintf(stderr, "floq: %s\n", message.c_str());
  return kExitIo;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return bool(out);
}

Result<std::vector<ConjunctiveQuery>> LoadRules(World& world,
                                                const std::string& path) {
  std::string text;
  if (!ReadFile(path, text)) {
    return InvalidArgumentError("cannot read " + path);
  }
  Result<flogic::Program> program = flogic::ParseProgram(world, text);
  if (!program.ok()) return program.status();
  std::vector<ConjunctiveQuery> rules = std::move(program->rules);
  for (ConjunctiveQuery& goal : program->goals) {
    rules.push_back(std::move(goal));
  }
  if (rules.empty()) {
    return InvalidArgumentError(path + " contains no rules or goals");
  }
  return rules;
}

int CmdCheck(const std::string& path, const ResourceBudget& budget) {
  World world;
  Result<std::vector<ConjunctiveQuery>> rules = LoadRules(world, path);
  if (!rules.ok()) return Fail(rules.status().ToString());
  if (rules->size() < 2) return Fail("check needs at least two rules");
  const ConjunctiveQuery& q1 = (*rules)[0];
  const ConjunctiveQuery& q2 = (*rules)[1];
  ContainmentOptions options;
  options.budget = budget;
  Result<ContainmentResult> result = CheckContainment(world, q1, q2, options);
  if (!result.ok()) return Fail(result.status().ToString());
  std::printf("%s", ExplainContainment(world, q1, q2, *result).c_str());
  if (result->resolution == Resolution::kUnknown) return kExitUnknown;
  return result->contained ? kExitOk : kExitNo;
}

// check, plus introspection: `--profile` appends a per-stage cost table
// (wall time and effort counters for the chase and the hom search) and
// `--chase-dot FILE` writes the chase graph — cross-arcs included — as
// Graphviz DOT. Exit codes mirror `check`.
int CmdExplain(const std::string& path, const ResourceBudget& budget,
               bool profile, const std::string& chase_dot) {
  World world;
  Result<std::vector<ConjunctiveQuery>> rules = LoadRules(world, path);
  if (!rules.ok()) return Fail(rules.status().ToString());
  if (rules->size() < 2) return Fail("explain needs at least two rules");
  const ConjunctiveQuery& q1 = (*rules)[0];
  const ConjunctiveQuery& q2 = (*rules)[1];
  ContainmentOptions options;
  options.budget = budget;
  options.record_cross_arcs = !chase_dot.empty();
  Result<ContainmentResult> result = CheckContainment(world, q1, q2, options);
  if (!result.ok()) return Fail(result.status().ToString());
  std::printf("%s", ExplainContainment(world, q1, q2, *result).c_str());

  if (profile) {
    const ChaseStats& cs = result->chase.stats();
    const MatchStats& hs = result->hom_stats;
    std::printf("\nprofile (per-stage cost):\n");
    std::printf("  %-12s %10s  %s\n", "stage", "wall_ms", "detail");
    std::printf("  %-12s %10.3f  level_bound=%d conjuncts=%u max_level=%d "
                "rounds=%llu fresh_nulls=%llu egd_merges=%llu\n",
                "chase", result->chase_ms, result->level_bound,
                result->chase.size(), result->chase.max_level(),
                static_cast<unsigned long long>(cs.rounds),
                static_cast<unsigned long long>(cs.fresh_nulls),
                static_cast<unsigned long long>(cs.egd_merges));
    std::printf("  %-12s %10.3f  nodes=%llu matches=%llu probes=%llu "
                "intersections=%llu gallops=%llu prepass_rejects=%llu\n",
                "hom-search", result->hom_ms,
                static_cast<unsigned long long>(hs.nodes_visited),
                static_cast<unsigned long long>(hs.matches_found),
                static_cast<unsigned long long>(hs.index_probes),
                static_cast<unsigned long long>(hs.intersect_nodes),
                static_cast<unsigned long long>(hs.gallop_skips),
                static_cast<unsigned long long>(hs.reject_prepass_hits));
    std::printf("  rule firings:");
    bool any = false;
    for (int k = 1; k <= 12; ++k) {
      if (cs.rule_fired[size_t(k)] == 0) continue;
      std::printf(" rho%d=%llu", k,
                  static_cast<unsigned long long>(cs.rule_fired[size_t(k)]));
      any = true;
    }
    std::printf("%s\n", any ? "" : " (none)");
  }

  if (!chase_dot.empty()) {
    DotOptions dot_options;
    dot_options.max_level = std::max(result->chase.max_level(), 0);
    dot_options.title = "chase of " + q1.ToString(world);
    if (!WriteFile(chase_dot,
                   ChaseGraphToDot(result->chase, world, dot_options))) {
      return Fail("cannot write " + chase_dot);
    }
    std::printf("chase graph written to %s\n", chase_dot.c_str());
  }

  if (result->resolution == Resolution::kUnknown) return kExitUnknown;
  return result->contained ? kExitOk : kExitNo;
}

int CmdClassify(const std::string& path, int jobs,
                const ResourceBudget& budget, bool no_prune,
                bool cost_schedule) {
  World world;
  Result<std::vector<ConjunctiveQuery>> rules = LoadRules(world, path);
  if (!rules.ok()) return Fail(rules.status().ToString());
  BatchContainmentOptions options;
  options.jobs = jobs;  // 0 = hardware concurrency
  options.containment.budget = budget;
  options.containment.use_signature_index = !no_prune;
  options.containment.use_cost_scheduling = cost_schedule;
  Result<QueryTaxonomy> taxonomy = ClassifyQueries(world, *rules, options);
  if (!taxonomy.ok()) return Fail(taxonomy.status().ToString());
  std::printf("%zu queries, %zu equivalence classes, %d checks\n",
              rules->size(), taxonomy->classes.size(), taxonomy->checks);
  const int pairs = taxonomy->checks + taxonomy->pruned_checks;
  if (pairs > 0) {
    std::printf("signature index: %d of %d pairs pruned (ratio %.3f)\n",
                taxonomy->pruned_checks, pairs,
                double(taxonomy->pruned_checks) / double(pairs));
  }
  if (taxonomy->unknown_checks > 0) {
    std::printf("%d check(s) returned UNKNOWN (resource budget tripped); "
                "the taxonomy may be coarser than the true preorder\n",
                taxonomy->unknown_checks);
  }
  std::printf("taxonomy (general at the top, ⊂ below):\n%s",
              TaxonomyToString(*taxonomy, *rules, world).c_str());
  return 0;
}

int CmdChase(const std::string& path, int level, bool dot) {
  World world;
  Result<std::vector<ConjunctiveQuery>> rules = LoadRules(world, path);
  if (!rules.ok()) return Fail(rules.status().ToString());
  ChaseOptions options;
  options.max_level = level;
  options.record_cross_arcs = dot;
  ChaseResult chase = ChaseQuery(world, (*rules)[0], options);
  if (dot) {
    DotOptions dot_options;
    dot_options.max_level = level;
    dot_options.title =
        "chase of " + (*rules)[0].ToString(world);
    std::printf("%s", ChaseGraphToDot(chase, world, dot_options).c_str());
  } else {
    std::printf("%s", chase.DebugString(world).c_str());
  }
  return 0;
}

int CmdMinimize(const std::string& path) {
  World world;
  Result<std::vector<ConjunctiveQuery>> rules = LoadRules(world, path);
  if (!rules.ok()) return Fail(rules.status().ToString());
  for (const ConjunctiveQuery& query : *rules) {
    MinimizeStats stats;
    Result<ConjunctiveQuery> minimal = MinimizeQuery(world, query, {}, &stats);
    if (!minimal.ok()) return Fail(minimal.status().ToString());
    std::printf("%s\n", flogic::QueryToSurface(query, world).c_str());
    if (stats.atoms_removed == 0) {
      std::printf("  already minimal under Sigma_FL\n");
    } else {
      std::printf("  => %s   (%d atoms removed)\n",
                  flogic::QueryToSurface(*minimal, world).c_str(),
                  stats.atoms_removed);
    }
  }
  return 0;
}

// Containment under a user dependency file (TGDs/EGDs; see
// docs/LANGUAGE.md). Complete when the set is weakly acyclic.
int CmdCheckUnder(const std::string& deps_path, const std::string& path,
                  const ResourceBudget& budget) {
  World world;
  std::string deps_text;
  if (!ReadFile(deps_path, deps_text)) {
    return Fail("cannot read " + deps_path);
  }
  Result<DependencySet> deps = ParseDependencies(world, deps_text);
  if (!deps.ok()) return Fail(deps.status().ToString());

  Result<std::vector<ConjunctiveQuery>> rules = LoadRules(world, path);
  if (!rules.ok()) return Fail(rules.status().ToString());
  if (rules->size() < 2) return Fail("check-under needs at least two rules");

  bool weakly_acyclic = IsWeaklyAcyclic(*deps, world);
  std::printf("dependencies: %zu TGDs, %zu EGDs, weakly acyclic: %s\n",
              deps->tgds.size(), deps->egds.size(),
              weakly_acyclic ? "yes" : "NO");

  ContainmentOptions options;
  options.budget = budget;
  if (!weakly_acyclic) {
    options.level_override =
        (*rules)[1].size() * 2 * (*rules)[0].size();
    std::printf("using bounded chase to level %d (sound; negatives "
                "inconclusive)\n",
                options.level_override);
  }
  Result<ContainmentResult> result = CheckContainmentUnderDependencies(
      world, (*rules)[0], (*rules)[1], *deps, options);
  if (!result.ok()) return Fail(result.status().ToString());
  if (result->resolution == Resolution::kUnknown) {
    std::printf("q1 ⊆ q2 under the dependencies?  UNKNOWN (%s budget "
                "tripped)\n",
                TripReasonName(result->unknown_reason));
    return kExitUnknown;
  }
  std::printf("q1 ⊆ q2 under the dependencies?  %s%s\n",
              result->contained ? "YES" : "no",
              result->conclusive ? "" : "  (inconclusive)");
  return result->contained ? kExitOk : kExitNo;
}

int CmdCore(const std::string& path) {
  World world;
  Result<std::vector<ConjunctiveQuery>> rules = LoadRules(world, path);
  if (!rules.ok()) return Fail(rules.status().ToString());
  for (const ConjunctiveQuery& query : *rules) {
    CoreStats stats;
    Result<ConjunctiveQuery> core = ComputeCore(world, query, {}, &stats);
    if (!core.ok()) return Fail(core.status().ToString());
    std::printf("%s\n", flogic::QueryToSurface(query, world).c_str());
    if (stats.atoms_removed == 0 && stats.variables_folded == 0) {
      std::printf("  already a Sigma_FL-core\n");
    } else {
      std::printf("  => %s   (%d atoms removed, %d variables folded)\n",
                  flogic::QueryToSurface(*core, world).c_str(),
                  stats.atoms_removed, stats.variables_folded);
    }
  }
  return 0;
}

// View usability: first rule = the query, remaining rules = views.
int CmdViews(const std::string& path, bool no_prune) {
  World world;
  Result<std::vector<ConjunctiveQuery>> rules = LoadRules(world, path);
  if (!rules.ok()) return Fail(rules.status().ToString());
  if (rules->size() < 2) return Fail("views needs a query plus views");
  ConjunctiveQuery query = (*rules)[0];
  std::vector<ConjunctiveQuery> views(rules->begin() + 1, rules->end());
  BatchContainmentOptions options;
  options.containment.use_signature_index = !no_prune;
  Result<ViewAnalysis> analysis = AnalyzeViews(world, query, views, options);
  if (!analysis.ok()) return Fail(analysis.status().ToString());
  std::printf("%s", ViewAnalysisToString(*analysis, query, views,
                                         world).c_str());
  return 0;
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return bool(in);
}

// Restores `kb` from `snapshot_path` when the file exists (returning true),
// otherwise parses `kb_path` into it (returning false). Fail()s inline on
// errors via the returned optional being empty.
std::optional<bool> LoadKbOrSnapshot(KnowledgeBase& kb,
                                     const std::string& kb_path,
                                     const std::string& snapshot_path) {
  if (!snapshot_path.empty() && FileExists(snapshot_path)) {
    Status loaded = kb.LoadSnapshot(snapshot_path);
    if (!loaded.ok()) {
      Fail(loaded.ToString());
      return std::nullopt;
    }
    std::fprintf(stderr, "floq: restored %u facts from snapshot %s%s\n",
                 kb.size(), snapshot_path.c_str(),
                 kb.saturated() ? " (saturated)" : "");
    return true;
  }
  std::string text;
  if (!ReadFile(kb_path, text)) {
    Fail("cannot read " + kb_path);
    return std::nullopt;
  }
  Status loaded = kb.Load(text);
  if (!loaded.ok()) {
    Fail(loaded.ToString());
    return std::nullopt;
  }
  return false;
}

// Writes `snapshot_path` after a fresh build (never after a load — the
// store would be byte-identical anyway).
int SaveKbSnapshot(KnowledgeBase& kb, const std::string& snapshot_path,
                   bool from_snapshot) {
  if (snapshot_path.empty() || from_snapshot) return 0;
  Status saved = kb.SaveSnapshot(snapshot_path);
  if (!saved.ok()) return Fail(saved.ToString());
  std::fprintf(stderr, "floq: snapshot written to %s\n",
               snapshot_path.c_str());
  return 0;
}

int CmdQuery(const std::string& kb_path, const std::string& query_text,
             const std::string& snapshot_path) {
  World world;
  KnowledgeBase kb(world);
  std::optional<bool> from_snapshot =
      LoadKbOrSnapshot(kb, kb_path, snapshot_path);
  if (!from_snapshot.has_value()) return kExitIo;
  Result<std::vector<std::vector<Term>>> answers = kb.Answer(query_text);
  if (!answers.ok()) return Fail(answers.status().ToString());
  for (const auto& tuple : *answers) {
    std::string line;
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) line += ", ";
      line += world.NameOf(tuple[i]);
    }
    std::printf("%s\n", line.empty() ? "true" : line.c_str());
  }
  if (answers->empty()) std::printf("(no answers)\n");
  return SaveKbSnapshot(kb, snapshot_path, *from_snapshot);
}

int CmdConsistency(const std::string& kb_path,
                   const std::string& snapshot_path) {
  World world;
  KnowledgeBase kb(world);
  std::optional<bool> from_snapshot =
      LoadKbOrSnapshot(kb, kb_path, snapshot_path);
  if (!from_snapshot.has_value()) return kExitIo;
  // On a snapshot-restored saturated store the fixpoint converges in one
  // delta-less scan; the report (rho_4 repairs, rho_5 gaps) is recomputed
  // either way — it is the point of the command.
  //
  // The snapshot (fresh builds only) is taken at the plain fixpoint,
  // BEFORE the completion pass below: rho_5 completion invents fresh
  // nulls that `floq query` must never see as answers, so the cached
  // store has to be exactly what CmdQuery's own saturation would build.
  if (!*from_snapshot) {
    Result<ConsistencyReport> base = kb.Saturate();
    if (!base.ok()) return Fail(base.status().ToString());
    int save_failed = SaveKbSnapshot(kb, snapshot_path, *from_snapshot);
    if (save_failed != 0) return save_failed;
  }
  SaturateOptions options;
  options.mandatory_completion_rounds = 8;
  Result<ConsistencyReport> report = kb.Saturate(options);
  if (!report.ok()) return Fail(report.status().ToString());
  std::printf("facts after saturation: %u\n", kb.size());
  std::printf("consistent (rho_4): %s\n", report->consistent ? "yes" : "NO");
  for (const std::string& violation : report->funct_violations) {
    std::printf("  violation: %s\n", violation.c_str());
  }
  for (const std::string& pending : report->unsatisfied_mandatory) {
    std::printf("  unsatisfied mandatory: %s\n", pending.c_str());
  }
  return report->consistent ? kExitOk : kExitNo;
}

// Interactive shell: F-logic statements are asserted, goals are answered,
// ':'-commands control the session. Reads stdin line by line; each line
// must be a complete statement.
int CmdRepl(const std::string& kb_path) {
  World world;
  KnowledgeBase kb(world);
  if (!kb_path.empty()) {
    std::string text;
    if (!ReadFile(kb_path, text)) return Fail("cannot read " + kb_path);
    Status loaded = kb.Load(text);
    if (!loaded.ok()) return Fail(loaded.ToString());
    std::printf("loaded %u facts from %s\n", kb.size(), kb_path.c_str());
  }
  std::printf("floq repl — F-logic statements assert, '?- goal.' queries,\n"
              ":consistency, :facts, :help, :quit\n");

  std::string line;
  while (std::printf("floq> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty()) continue;
    if (trimmed == ":quit" || trimmed == ":q") break;
    if (trimmed == ":help") {
      std::printf("  john : student.          assert a fact\n"
                  "  ?- X :: person.          run a goal\n"
                  "  q(X) :- X : person.      define + run a rule\n"
                  "  :consistency             saturate and report\n"
                  "  :facts                   dump the store\n"
                  "  :quit                    leave\n");
      continue;
    }
    if (trimmed == ":facts") {
      for (const Atom& fact : kb.database().facts()) {
        std::printf("  %s\n",
                    flogic::AtomToSurface(fact, world).c_str());
      }
      continue;
    }
    if (trimmed == ":consistency") {
      SaturateOptions options;
      options.mandatory_completion_rounds = 8;
      Result<ConsistencyReport> report = kb.Saturate(options);
      if (!report.ok()) {
        std::printf("error: %s\n", report.status().ToString().c_str());
        continue;
      }
      std::printf("facts: %u, consistent: %s\n", kb.size(),
                  report->consistent ? "yes" : "NO");
      for (const std::string& violation : report->funct_violations) {
        std::printf("  %s\n", violation.c_str());
      }
      continue;
    }

    // Goals and rules answer; plain statements assert.
    Result<flogic::Program> program =
        flogic::ParseProgram(world, std::string(trimmed));
    if (!program.ok()) {
      std::printf("error: %s\n", program.status().ToString().c_str());
      continue;
    }
    for (const Atom& fact : program->facts) {
      Status added = kb.AddFact(fact);
      if (!added.ok()) std::printf("error: %s\n", added.ToString().c_str());
    }
    if (!program->facts.empty()) {
      std::printf("asserted %zu fact(s)\n", program->facts.size());
    }
    std::vector<ConjunctiveQuery> to_answer = program->goals;
    for (const ConjunctiveQuery& rule : program->rules) {
      to_answer.push_back(rule);
    }
    for (const ConjunctiveQuery& goal : to_answer) {
      Result<std::vector<std::vector<Term>>> answers = kb.Answer(goal);
      if (!answers.ok()) {
        std::printf("error: %s\n", answers.status().ToString().c_str());
        continue;
      }
      if (answers->empty()) {
        std::printf("no\n");
        continue;
      }
      for (const auto& tuple : *answers) {
        if (tuple.empty()) {
          std::printf("yes\n");
          continue;
        }
        std::string out;
        for (size_t i = 0; i < tuple.size(); ++i) {
          if (i > 0) out += ", ";
          out += world.NameOf(tuple[i]);
        }
        std::printf("%s\n", out.c_str());
      }
    }
  }
  return 0;
}

// True when any diagnostic is at least as severe as `threshold`
// (Severity orders kError < kWarning < kNote).
bool ReachesSeverity(
    const std::vector<std::pair<std::string,
                                std::vector<analysis::Diagnostic>>>& groups,
    analysis::Severity threshold) {
  for (const auto& [file, diagnostics] : groups) {
    for (const analysis::Diagnostic& d : diagnostics) {
      if (d.severity <= threshold) return true;
    }
  }
  return false;
}

// Static diagnostics: program lints (FLQ0xx, FLD103) on `path`,
// dependency-set termination analyses (FLD101/FLD102/FLD201) on
// `deps_path`. With `snapshot_path` set, `path` names a knowledge base:
// the store is restored from the snapshot when it exists (else built from
// the file, writing the snapshot), and FLD103 runs against the loaded
// facts — the store a `floq query` against the same snapshot would see.
// Exits 0 when below `fail_on`, 2 when a diagnostic at or above it fired,
// 1 on operational failure (unreadable file).
int CmdLint(const std::string& path, const std::string& deps_path,
            const std::string& snapshot_path, bool json,
            analysis::Severity fail_on, const ResourceBudget& budget) {
  World world;
  analysis::AnalyzeOptions options;
  // A tripped budget keeps the semantic probes silent (never wrong).
  options.query.budget = budget;
  // (filename, diagnostics) per linted source.
  std::vector<std::pair<std::string, std::vector<analysis::Diagnostic>>>
      groups;
  std::optional<KnowledgeBase> kb;
  if (!path.empty() && !snapshot_path.empty()) {
    kb.emplace(world);
    std::optional<bool> from_snapshot =
        LoadKbOrSnapshot(*kb, path, snapshot_path);
    if (!from_snapshot.has_value()) return kExitIo;
    std::vector<Atom> facts(kb->database().facts().begin(),
                            kb->database().facts().end());
    std::vector<analysis::Diagnostic> diagnostics =
        analysis::LintFacts(world, facts);
    analysis::SortDiagnostics(diagnostics);
    groups.push_back({path, std::move(diagnostics)});
    int save_failed = SaveKbSnapshot(*kb, snapshot_path, *from_snapshot);
    if (save_failed != 0) return save_failed;
  } else if (!path.empty()) {
    std::string text;
    if (!ReadFile(path, text)) return Fail("cannot read " + path);
    groups.push_back(
        {path, analysis::AnalyzeProgramText(world, text, options)});
  }
  if (!deps_path.empty()) {
    std::string text;
    if (!ReadFile(deps_path, text)) return Fail("cannot read " + deps_path);
    groups.push_back(
        {deps_path, analysis::AnalyzeDependencyText(world, text)});
  }

  size_t total = 0;
  for (const auto& [file, diagnostics] : groups) {
    total += diagnostics.size();
  }

  if (json) {
    // Splice the per-file arrays into one.
    std::string out = "[";
    bool first = true;
    for (const auto& [file, diagnostics] : groups) {
      if (diagnostics.empty()) continue;
      std::string array = analysis::DiagnosticsToJson(diagnostics, file);
      if (!first) out += ",";
      out.append(array, 1, array.size() - 3);  // strip "[" and "\n]"
      first = false;
    }
    out += first ? "]" : "\n]";
    if (MetricsRegistry::enabled()) {
      // With --metrics-out the array is wrapped in an object that also
      // embeds the collected metrics (the semantic probes run chases and
      // hom searches); the bare-array shape is kept otherwise for
      // compatibility. ToJson is canonical — no trailing whitespace — so
      // the snapshot splices in verbatim.
      out = "{\"diagnostics\": " + out + ",\n\"metrics\": " +
            MetricsRegistry::Get().ToJson() + "}";
    }
    std::printf("%s\n", out.c_str());
  } else {
    int error_count = 0, warning_count = 0;
    for (const auto& [file, diagnostics] : groups) {
      for (const analysis::Diagnostic& d : diagnostics) {
        std::printf("%s\n", analysis::FormatDiagnostic(d, file).c_str());
        if (d.severity == analysis::Severity::kError) ++error_count;
        if (d.severity == analysis::Severity::kWarning) ++warning_count;
      }
    }
    if (total > 0) {
      std::printf("%d error(s), %d warning(s)\n", error_count, warning_count);
    } else {
      std::printf("no diagnostics\n");
    }
  }
  return ReachesSeverity(groups, fail_on) ? kExitNo : kExitOk;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// "linear(depth 2)" / "unbounded" — a query or fact base's Sigma_FL
// null-generation grade for the analyze table.
std::string SigmaGradeToString(const analysis::SigmaBoundedness& grade) {
  std::string out = analysis::NullDegreeName(grade.degree);
  if (grade.degree == analysis::NullDegree::kLinear &&
      grade.mandatory_depth > 0) {
    out += "(depth " + std::to_string(grade.mandatory_depth) + ")";
  }
  return out;
}

// Static cost & boundedness analysis (DESIGN.md §15). For each rule/goal
// of `path`: the probe-fitted chase growth estimate at the query's own
// Theorem-12 level, the predicted hom-search fan-out, the confidence tag,
// and the instance-level Sigma_FL boundedness grade, plus any FLD202 /
// FLD203 diagnostics. The program's fact base gets its own grade (the
// mandatory-attribute chain depth that bounds the rho_5 cascade). With
// --deps, the dependency set is graded over the labeled dependency graph
// (FLD101/102/201) with its per-position degree table. Exit codes mirror
// `lint` with the default threshold: 2 when an error-severity diagnostic
// fired, else 0.
int CmdAnalyze(const std::string& path, const std::string& deps_path,
               bool json) {
  using analysis::NullDegree;
  World world;
  std::vector<std::pair<std::string, std::vector<analysis::Diagnostic>>>
      groups;
  std::vector<ConjunctiveQuery> queries;
  std::vector<analysis::QueryCostReport> reports;
  std::optional<analysis::SigmaBoundedness> facts_grade;
  size_t fact_count = 0;

  if (!path.empty()) {
    std::string text;
    if (!ReadFile(path, text)) return Fail("cannot read " + path);
    Result<flogic::Program> program = flogic::ParseProgram(world, text);
    if (!program.ok()) return Fail(program.status().ToString());
    queries = program->rules;
    queries.insert(queries.end(), program->goals.begin(),
                   program->goals.end());
    std::vector<analysis::Diagnostic> diagnostics;
    for (const ConjunctiveQuery& query : queries) {
      analysis::QueryCostReport report =
          analysis::AnalyzeQueryCost(world, query);
      diagnostics.insert(diagnostics.end(), report.diagnostics.begin(),
                         report.diagnostics.end());
      reports.push_back(std::move(report));
    }
    if (!program->facts.empty()) {
      fact_count = program->facts.size();
      facts_grade = analysis::AnalyzeSigmaBoundedness(world, program->facts);
    }
    analysis::SortDiagnostics(diagnostics);
    groups.push_back({path, std::move(diagnostics)});
  }

  std::optional<analysis::BoundednessReport> deps_report;
  std::optional<DependencySet> deps;
  if (!deps_path.empty()) {
    std::string text;
    if (!ReadFile(deps_path, text)) return Fail("cannot read " + deps_path);
    Result<DependencySet> parsed = ParseDependencies(world, text);
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    deps = std::move(*parsed);
    deps_report = analysis::AnalyzeBoundedness(*deps, world);
    groups.push_back({deps_path, analysis::AnalyzeDependencySet(*deps, world)});
  }

  if (json) {
    std::string out = "{";
    if (!queries.empty()) {
      out += "\"queries\": [";
      for (size_t i = 0; i < queries.size(); ++i) {
        const analysis::CostEstimate& e = reports[i].estimate;
        char buffer[256];
        std::snprintf(buffer, sizeof buffer,
                      "{\"chase_atoms_bound\": %llu, "
                      "\"chase_levels_bound\": %d, "
                      "\"hom_fanout_bound\": %.6g, \"confidence\": %.4f, "
                      "\"boundedness\": \"%s\", \"mandatory_depth\": %d}",
                      static_cast<unsigned long long>(e.chase_atoms_bound),
                      e.chase_levels_bound, e.hom_fanout_bound, e.confidence,
                      analysis::NullDegreeName(reports[i].boundedness.degree),
                      reports[i].boundedness.mandatory_depth);
        out += (i > 0 ? ",\n  " : "\n  ");
        out += "{\"query\": \"" +
               JsonEscape(flogic::QueryToSurface(queries[i], world)) +
               "\", \"estimate\": " + buffer + "}";
      }
      out += "\n],\n";
    }
    if (facts_grade.has_value()) {
      out += "\"fact_base\": {\"facts\": " + std::to_string(fact_count) +
             ", \"boundedness\": \"";
      out += analysis::NullDegreeName(facts_grade->degree);
      out += "\", \"mandatory_depth\": " +
             std::to_string(facts_grade->mandatory_depth) + "},\n";
    }
    if (deps_report.has_value()) {
      out += "\"dependencies\": {\"degree\": \"";
      out += analysis::NullDegreeName(deps_report->degree);
      out += "\", \"witness_degree\": " +
             std::to_string(deps_report->witness_degree) + "},\n";
    }
    out += "\"diagnostics\": [";
    bool first = true;
    for (const auto& [file, diagnostics] : groups) {
      if (diagnostics.empty()) continue;
      std::string array = analysis::DiagnosticsToJson(diagnostics, file);
      if (!first) out += ",";
      out.append(array, 1, array.size() - 3);  // strip "[" and "\n]"
      first = false;
    }
    out += first ? "]}" : "\n]}";
    std::printf("%s\n", out.c_str());
  } else {
    if (!queries.empty()) {
      std::printf("query cost estimates (%s):\n", path.c_str());
      std::printf("  %12s %7s %12s %6s %-16s %s\n", "chase_atoms", "levels",
                  "hom_nodes", "conf", "boundedness", "query");
      for (size_t i = 0; i < queries.size(); ++i) {
        const analysis::CostEstimate& e = reports[i].estimate;
        std::printf("  %12llu %7d %12.4g %6.2f %-16s %s\n",
                    static_cast<unsigned long long>(e.chase_atoms_bound),
                    e.chase_levels_bound, e.hom_fanout_bound, e.confidence,
                    SigmaGradeToString(reports[i].boundedness).c_str(),
                    flogic::QueryToSurface(queries[i], world).c_str());
      }
    }
    if (facts_grade.has_value()) {
      std::printf("fact base: %zu facts, null generation %s\n", fact_count,
                  SigmaGradeToString(*facts_grade).c_str());
      for (const analysis::MandatoryEdge& edge : facts_grade->witness) {
        std::printf("    %s\n", edge.ToString(world).c_str());
      }
    }
    if (deps_report.has_value()) {
      std::printf("dependency set (%s): null generation %s",
                  deps_path.c_str(),
                  analysis::NullDegreeName(deps_report->degree));
      if (deps_report->degree == NullDegree::kPolynomial) {
        std::printf(" (degree %d)", deps_report->witness_degree);
      }
      std::printf("\n");
      for (const analysis::PositionBoundedness& position :
           deps_report->positions) {
        std::printf("  %-12s %-12s %s\n",
                    position.position.ToString(world).c_str(),
                    analysis::NullDegreeName(position.degree),
                    analysis::WitnessPathToString(position.witness, *deps,
                                                  world).c_str());
      }
    }
    bool any = false;
    for (const auto& [file, diagnostics] : groups) {
      for (const analysis::Diagnostic& d : diagnostics) {
        std::printf("%s\n", analysis::FormatDiagnostic(d, file).c_str());
        any = true;
      }
    }
    if (!any) std::printf("no diagnostics\n");
  }
  return ReachesSeverity(groups, analysis::Severity::kError) ? kExitNo : kExitOk;
}

// --- serve / client -------------------------------------------------------

int Usage();  // forward: the daemon commands share the usage epilogue.

// `floq serve <dir>`: run the crash-safe containment daemon (DESIGN.md
// §16) until a drain signal. The global --jobs/--timeout-ms/--hom-steps
// flags become the daemon-wide defaults (requests may lower but never
// raise the budget). Exits 0 after a graceful drain, 4 on startup or
// fatal I/O failure.
int CmdServe(std::vector<std::string>& args, int jobs,
             const ResourceBudget& budget, const std::string& metrics_out) {
  server::DaemonOptions options;
  // The global --metrics-out flag doubles as the daemon's final-snapshot
  // path: the drain path writes it before RunDaemon returns.
  options.metrics_out = metrics_out;
  bool bad = false;
  for (size_t i = 1; i < args.size(); ++i) {
    auto int_flag = [&](const char* name, auto* slot) -> bool {
      if (args[i] != name) return false;
      if (i + 1 >= args.size()) {
        bad = true;
        return true;
      }
      char* end = nullptr;
      long long value = std::strtoll(args[i + 1].c_str(), &end, 10);
      if (end == args[i + 1].c_str() || *end != '\0' || value < 0) {
        bad = true;
        return true;
      }
      *slot = static_cast<std::remove_reference_t<decltype(*slot)>>(value);
      ++i;
      return true;
    };
    if (args[i] == "--socket" && i + 1 < args.size()) {
      options.socket_path = args[++i];
    } else if (args[i] == "--log-out" && i + 1 < args.size()) {
      options.log_out = args[++i];
    } else if (args[i] == "--log-level" && i + 1 < args.size()) {
      options.log_level = args[++i];
    } else if (args[i] == "--trace-dir" && i + 1 < args.size()) {
      options.trace_dir = args[++i];
    } else if (int_flag("--workers", &options.workers) ||
               int_flag("--queue-limit", &options.queue_limit) ||
               int_flag("--max-connections", &options.max_connections) ||
               int_flag("--idle-timeout-ms", &options.idle_timeout_ms) ||
               int_flag("--io-timeout-ms", &options.io_timeout_ms) ||
               int_flag("--checkpoint-every", &options.checkpoint_every) ||
               int_flag("--slow-request-ms", &options.slow_request_ms) ||
               int_flag("--trace-sample", &options.trace_sample) ||
               int_flag("--http-metrics-port", &options.http_metrics_port)) {
      if (bad) break;
    } else if (!StartsWith(args[i], "--") && options.dir.empty()) {
      options.dir = args[i];
    } else {
      bad = true;
      break;
    }
  }
  if (bad || options.dir.empty()) return Usage();
  options.request_timeout_ms = budget.timeout_ms;
  options.hom_step_budget = budget.hom_step_budget;
  if (jobs > 0) options.jobs = jobs;
  Status status = server::RunDaemon(options);
  if (!status.ok()) return Fail(status.ToString());
  return kExitOk;
}

// Connects to the daemon's AF_UNIX socket; -1 + errno message on failure.
int ConnectUnix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    *error = "connect " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

// --- floq top -------------------------------------------------------------

// Rebuilds a MetricsSnapshot from the `metrics` reply's embedded JSON
// object (the exact shape MetricsSnapshot::ToJson emits). Values
// round-trip through the protocol's double representation — exact through
// 2^53, far beyond anything a live console renders. Bucket index from the
// serialized lower bound inverts Histogram::BucketLowerBound:
// 0 -> bucket 0, else 2^(b-1) -> b = bit_width.
bool SnapshotFromJson(const server::Json& metrics, MetricsSnapshot* out) {
  const server::Json* counters = metrics.Find("counters");
  const server::Json* gauges = metrics.Find("gauges");
  const server::Json* histograms = metrics.Find("histograms");
  if (counters == nullptr || !counters->is_object() || gauges == nullptr ||
      !gauges->is_object() || histograms == nullptr ||
      !histograms->is_object()) {
    return false;
  }
  for (const auto& [name, value] : counters->members()) {
    out->counters.push_back({name, uint64_t(value.AsNumber())});
  }
  for (const auto& [name, value] : gauges->members()) {
    out->gauges.push_back({name, int64_t(value.AsNumber())});
  }
  for (const auto& [name, value] : histograms->members()) {
    MetricsSnapshot::HistogramValue h;
    h.name = name;
    const server::Json* count = value.Find("count");
    const server::Json* sum = value.Find("sum");
    h.count = count != nullptr ? uint64_t(count->AsNumber()) : 0;
    h.sum = sum != nullptr ? uint64_t(sum->AsNumber()) : 0;
    const server::Json* buckets = value.Find("buckets");
    if (buckets != nullptr && buckets->is_array()) {
      for (const server::Json& entry : buckets->items()) {
        if (!entry.is_array() || entry.items().size() != 2) return false;
        uint64_t lo = uint64_t(entry.items()[0].AsNumber());
        int bucket = lo == 0 ? 0 : std::bit_width(lo);
        if (bucket >= Histogram::kBuckets) bucket = Histogram::kBuckets - 1;
        h.buckets[size_t(bucket)] += uint64_t(entry.items()[1].AsNumber());
      }
    }
    out->histograms.push_back(std::move(h));
  }
  return true;
}

// One `metrics` request against a running daemon, decoded into a snapshot.
bool FetchSnapshot(const std::string& socket_path, MetricsSnapshot* out,
                   std::string* error) {
  int fd = ConnectUnix(socket_path, error);
  if (fd < 0) return false;
  server::Json request = server::Json::Object();
  request.Set("cmd", server::Json::String("metrics"));
  Status sent = server::WriteFrame(fd, request.Serialize(),
                                   Deadline::AfterMillis(10'000));
  if (!sent.ok()) {
    ::close(fd);
    *error = sent.ToString();
    return false;
  }
  server::FrameDecoder decoder;
  Result<std::string> payload =
      server::ReadFrame(fd, decoder, Deadline::AfterMillis(10'000));
  ::close(fd);
  if (!payload.ok()) {
    *error = payload.status().ToString();
    return false;
  }
  Result<server::Json> reply = server::ParseJson(*payload);
  if (!reply.ok()) {
    *error = reply.status().ToString();
    return false;
  }
  const server::Json* metrics = reply->Find("metrics");
  if (metrics == nullptr || !SnapshotFromJson(*metrics, out)) {
    *error = "malformed metrics reply from " + socket_path;
    return false;
  }
  return true;
}

uint64_t CounterValueOf(const MetricsSnapshot& s, std::string_view name) {
  for (const auto& c : s.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

int64_t GaugeValueOf(const MetricsSnapshot& s, std::string_view name) {
  for (const auto& g : s.gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

const MetricsSnapshot::HistogramValue* HistogramOf(const MetricsSnapshot& s,
                                                   std::string_view name) {
  for (const auto& h : s.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// `floq top --socket PATH [--interval-ms N] [--count N] [--no-clear]`
// (alias: `floq client watch`): a live console over the daemon's `metrics`
// command. Each refresh fetches a snapshot, diffs it against the previous
// one with MetricsRegistry::SnapshotDelta, and renders rates and latency
// quantiles from the delta; gauges are point-in-time and render as-is.
// The first frame has no baseline, so it shows totals since daemon start
// and no rates.
int CmdTop(const std::string& socket_path, std::vector<std::string>& flags) {
  int64_t interval_ms = 2'000;
  int64_t count = 0;  // 0 = refresh until interrupted
  bool no_clear = false;
  bool bad = false;
  for (size_t i = 0; i < flags.size(); ++i) {
    auto int_flag = [&](const char* name, int64_t* slot) -> bool {
      if (flags[i] != name) return false;
      if (i + 1 >= flags.size()) {
        bad = true;
        return true;
      }
      char* end = nullptr;
      long long value = std::strtoll(flags[i + 1].c_str(), &end, 10);
      if (end == flags[i + 1].c_str() || *end != '\0' || value < 0) {
        bad = true;
        return true;
      }
      *slot = value;
      ++i;
      return true;
    };
    if (flags[i] == "--no-clear") {
      no_clear = true;
    } else if (int_flag("--interval-ms", &interval_ms) ||
               int_flag("--count", &count)) {
      if (bad) break;
    } else {
      bad = true;
      break;
    }
  }
  if (bad || socket_path.empty() || interval_ms <= 0) return Usage();

  MetricsSnapshot previous;
  bool have_previous = false;
  auto last_fetch = std::chrono::steady_clock::now();
  for (int64_t frame = 0; count == 0 || frame < count; ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    MetricsSnapshot current;
    std::string error;
    if (!FetchSnapshot(socket_path, &current, &error)) return Fail(error);
    auto now = std::chrono::steady_clock::now();
    double elapsed_s =
        std::chrono::duration<double>(now - last_fetch).count();
    last_fetch = now;

    const MetricsSnapshot& view =
        have_previous ? MetricsRegistry::SnapshotDelta(previous, current)
                      : current;
    // Rates only have a well-defined window once there is a baseline.
    auto rate = [&](uint64_t delta) -> std::string {
      if (!have_previous || elapsed_s <= 0) return "--";
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.1f", double(delta) / elapsed_s);
      return buffer;
    };

    if (!no_clear) std::printf("\x1b[H\x1b[2J");
    std::printf("floq top — %s — every %lld ms — frame %lld%s\n",
                socket_path.c_str(), static_cast<long long>(interval_ms),
                static_cast<long long>(frame + 1),
                have_previous ? "" : " (totals since daemon start)");
    std::printf(
        "requests %llu (%s/s)   shed %llu   inflight %lld   queued %lld   "
        "connections %lld\n",
        static_cast<unsigned long long>(CounterValueOf(view, "serve.requests")),
        rate(CounterValueOf(view, "serve.requests")).c_str(),
        static_cast<unsigned long long>(
            CounterValueOf(view, "serve.shed.requests")),
        static_cast<long long>(GaugeValueOf(current, "serve.inflight")),
        static_cast<long long>(GaugeValueOf(current, "serve.queue.depth")),
        static_cast<long long>(GaugeValueOf(current, "serve.connections")));
    const MetricsSnapshot::HistogramValue* fsync =
        HistogramOf(view, "serve.wal.fsync_us");
    std::printf(
        "wal      records %llu   bytes %llu   dirty %lld   fsync p50 %.0fus "
        "p99 %.0fus\n",
        static_cast<unsigned long long>(
            CounterValueOf(view, "serve.wal.append.records")),
        static_cast<unsigned long long>(
            CounterValueOf(view, "serve.wal.append.bytes")),
        static_cast<long long>(GaugeValueOf(current, "serve.wal.dirty")),
        fsync != nullptr ? HistogramQuantile(*fsync, 0.5) : 0.0,
        fsync != nullptr ? HistogramQuantile(*fsync, 0.99) : 0.0);
    std::printf(
        "registry queries %lld   epoch %lld   hasse edges %lld   "
        "checkpoints %llu\n",
        static_cast<long long>(GaugeValueOf(current, "serve.registry.queries")),
        static_cast<long long>(GaugeValueOf(current, "serve.registry.epoch")),
        static_cast<long long>(
            GaugeValueOf(current, "serve.registry.hasse_edges")),
        static_cast<unsigned long long>(
            CounterValueOf(view, "serve.checkpoint.count")));
    std::printf("%-12s %10s %8s %10s %10s\n", "command", "count", "rate/s",
                "p50_us", "p99_us");
    for (const auto& h : view.histograms) {
      // serve.cmd.<name>.latency_us
      constexpr std::string_view kPrefix = "serve.cmd.";
      constexpr std::string_view kSuffix = ".latency_us";
      if (h.name.size() <= kPrefix.size() + kSuffix.size() ||
          h.name.compare(0, kPrefix.size(), kPrefix) != 0 ||
          h.name.compare(h.name.size() - kSuffix.size(), kSuffix.size(),
                         kSuffix) != 0) {
        continue;
      }
      std::string cmd = h.name.substr(
          kPrefix.size(), h.name.size() - kPrefix.size() - kSuffix.size());
      if (h.count == 0 && have_previous) continue;  // idle this window
      std::printf("%-12s %10llu %8s %10.0f %10.0f\n", cmd.c_str(),
                  static_cast<unsigned long long>(h.count),
                  rate(h.count).c_str(), HistogramQuantile(h, 0.5),
                  HistogramQuantile(h, 0.99));
    }
    std::fflush(stdout);
    previous = std::move(current);
    have_previous = true;
  }
  return kExitOk;
}

// `floq client --socket PATH <sub> [args]`: one request, one reply. The
// raw JSON response goes to stdout; the exit code maps the reply onto the
// uniform table (CONTAINED 0 / NOT_CONTAINED 2 / UNKNOWN or OVERLOADED 3
// / any other failure 4) so shell scripts branch on verdicts without a
// JSON parser.
int CmdClient(std::vector<std::string>& args, const ResourceBudget& budget) {
  std::string socket_path, lhs_query, rhs_query, format;
  std::vector<std::string> rest;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--socket" && i + 1 < args.size()) {
      socket_path = args[++i];
    } else if (args[i] == "--lhs-query" && i + 1 < args.size()) {
      lhs_query = args[++i];
    } else if (args[i] == "--rhs-query" && i + 1 < args.size()) {
      rhs_query = args[++i];
    } else if (args[i] == "--format" && i + 1 < args.size()) {
      format = args[++i];
    } else {
      rest.push_back(args[i]);
    }
  }
  if (socket_path.empty() || rest.empty()) return Usage();
  const std::string& sub = rest[0];
  if (sub == "watch") {
    // Alias for `floq top` — same loop, same flags (minus --socket, which
    // the client already parsed).
    std::vector<std::string> flags(rest.begin() + 1, rest.end());
    return CmdTop(socket_path, flags);
  }

  using server::Json;
  Json request = Json::Object();
  request.Set("cmd", Json::String(sub));
  if (sub == "register" && rest.size() == 3) {
    request.Set("name", Json::String(rest[1]));
    request.Set("query", Json::String(rest[2]));
  } else if (sub == "unregister" && rest.size() == 2) {
    request.Set("name", Json::String(rest[1]));
  } else if (sub == "contain") {
    // Sides: positional args are registered names; --lhs-query /
    // --rhs-query supply ad-hoc surface text instead.
    size_t positional = 1;
    if (lhs_query.empty()) {
      if (positional >= rest.size()) return Usage();
      request.Set("lhs", Json::String(rest[positional++]));
    } else {
      request.Set("lhs_query", Json::String(lhs_query));
    }
    if (rhs_query.empty()) {
      if (positional >= rest.size()) return Usage();
      request.Set("rhs", Json::String(rest[positional++]));
    } else {
      request.Set("rhs_query", Json::String(rhs_query));
    }
    if (positional != rest.size()) return Usage();
    if (budget.timeout_ms > 0) {
      request.Set("timeout_ms", Json::Number(double(budget.timeout_ms)));
    }
  } else if (sub == "lint" && rest.size() == 2) {
    std::string text;
    if (!ReadFile(rest[1], text)) return Fail("cannot read " + rest[1]);
    request.Set("program", Json::String(text));
  } else if (sub == "metrics" && rest.size() == 1) {
    // `--format prometheus` asks the daemon for text exposition instead
    // of the embedded JSON snapshot.
    if (!format.empty()) request.Set("format", Json::String(format));
  } else if ((sub == "classify" || sub == "status" || sub == "ping" ||
              sub == "shutdown") &&
             rest.size() == 1) {
    // No arguments.
  } else {
    return Usage();
  }

  std::string error;
  int fd = ConnectUnix(socket_path, &error);
  if (fd < 0) return Fail(error);
  // Containment may legitimately run long; bound the wait only when the
  // caller bounded the check (plus slack for queueing), else 10 minutes
  // as a hung-daemon backstop.
  Deadline reply_by = budget.timeout_ms > 0
                          ? Deadline::AfterMillis(budget.timeout_ms + 30'000)
                          : Deadline::AfterMillis(600'000);
  Status sent =
      server::WriteFrame(fd, request.Serialize(), Deadline::AfterMillis(10'000));
  if (!sent.ok()) {
    ::close(fd);
    return Fail(sent.ToString());
  }
  server::FrameDecoder decoder;
  Result<std::string> payload = server::ReadFrame(fd, decoder, reply_by);
  ::close(fd);
  if (!payload.ok()) return Fail(payload.status().ToString());
  // Prometheus exposition prints as verbatim text (it IS the payload a
  // scraper wants); every other reply prints as the raw JSON frame.
  const bool prometheus_body = sub == "metrics" && format == "prometheus";
  if (!prometheus_body) std::printf("%s\n", payload->c_str());

  Result<Json> reply = server::ParseJson(*payload);
  if (!reply.ok()) return Fail(reply.status().ToString());
  Result<bool> ok = reply->GetBool("ok");
  if (!ok.ok()) return Fail("malformed reply: no ok field");
  if (prometheus_body) {
    if (*ok) {
      Result<std::string> body = reply->GetString("body");
      if (!body.ok()) return Fail("malformed reply: no exposition body");
      std::fputs(body->c_str(), stdout);  // exposition text ends in \n
    } else {
      std::printf("%s\n", payload->c_str());  // typed error, show the frame
    }
  }
  if (!*ok) {
    // Typed failure: resource shedding is UNKNOWN territory (exit 3),
    // everything else is operational (exit 4).
    const Json* code = reply->Find("code");
    if (code != nullptr && code->is_string() &&
        (code->AsString() == "OVERLOADED" || code->AsString() == "UNKNOWN")) {
      return kExitUnknown;
    }
    return kExitIo;
  }
  if (sub == "contain") {
    const Json* resolution = reply->Find("resolution");
    if (resolution == nullptr || !resolution->is_string()) {
      return Fail("malformed reply: no resolution");
    }
    if (resolution->AsString() == "CONTAINED") return kExitOk;
    if (resolution->AsString() == "NOT_CONTAINED") return kExitNo;
    return kExitUnknown;
  }
  if (sub == "lint") {
    Result<bool> errors = reply->GetBool("errors");
    if (errors.ok() && *errors) return kExitNo;
  }
  return kExitOk;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  floq check <queries.fl>\n"
               "  floq explain <queries.fl> [--profile] [--chase-dot FILE]\n"
               "  floq classify [--jobs N] [--no-prune] [--cost-schedule] "
               "<queries.fl>\n"
               "  floq chase <queries.fl> [max_level]\n"
               "  floq dot <queries.fl> [max_level]\n"
               "  floq minimize <queries.fl>\n"
               "  floq core <queries.fl>\n"
               "  floq check-under <deps.fl> <queries.fl>\n"
               "  floq views <query_then_views.fl>\n"
               "  floq query <kb.fl> '<query>'\n"
               "  floq consistency <kb.fl>\n"
               "  floq lint [--json] [--deps <deps.fl>] "
               "[--fail-on error|warn|note] [<file.fl>]\n"
               "  floq analyze [--json] [--deps <deps.fl>] [<file.fl>]\n"
               "  floq repl [kb.fl]\n"
               "  floq serve <dir> [--socket PATH] [--workers N] "
               "[--queue-limit N]\n"
               "             [--max-connections N] [--idle-timeout-ms N] "
               "[--checkpoint-every N]\n"
               "             [--log-out F] [--log-level "
               "debug|info|warn|error|off]\n"
               "             [--slow-request-ms N] [--trace-sample N] "
               "[--trace-dir D]\n"
               "             [--http-metrics-port P]\n"
               "  floq top --socket PATH [--interval-ms N] [--count N] "
               "[--no-clear]\n"
               "  floq client --socket PATH register <name> '<query>' | "
               "unregister <name> |\n"
               "              contain <lhs> <rhs> [--lhs-query Q] "
               "[--rhs-query Q] |\n"
               "              classify | lint <file.fl> | status |\n"
               "              metrics [--format prometheus] | ping | "
               "shutdown | watch\n"
               "global flags: --jobs N, --timeout-ms N, --hom-steps N,\n"
               "              --no-prune (disable the signature prefilter),\n"
               "              --cost-schedule (classify: cheapest-predicted-"
               "first order),\n"
               "              --metrics-out <m.json>, --trace-out <t.json>,\n"
               "              --kb-snapshot <kb.snap> (query/consistency/"
               "lint:\n"
               "                load the KB from the snapshot if it exists,\n"
               "                else build it and write the snapshot)\n"
               "(a tripped budget renders as UNKNOWN and exits 3)\n");
  return 64;
}

int RunCommand(const std::string& command, std::vector<std::string>& args,
               int jobs, const ResourceBudget& budget, bool no_prune,
               bool cost_schedule, const std::string& kb_snapshot,
               const std::string& metrics_out) {
  if (command == "check" && args.size() == 2) {
    return CmdCheck(args[1], budget);
  }
  if (command == "explain" && args.size() >= 2) {
    bool profile = false;
    std::string chase_dot, file_path;
    bool bad = false;
    for (size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--profile") {
        profile = true;
      } else if (args[i] == "--chase-dot" && i + 1 < args.size()) {
        chase_dot = args[++i];
      } else if (!StartsWith(args[i], "--") && file_path.empty()) {
        file_path = args[i];
      } else {
        bad = true;
      }
    }
    if (bad || file_path.empty()) return Usage();
    return CmdExplain(file_path, budget, profile, chase_dot);
  }
  if (command == "classify" && args.size() == 2) {
    return CmdClassify(args[1], jobs, budget, no_prune, cost_schedule);
  }
  if ((command == "chase" || command == "dot") &&
      (args.size() == 2 || args.size() == 3)) {
    int level = args.size() == 3 ? std::atoi(args[2].c_str()) : 12;
    return CmdChase(args[1], level, command == "dot");
  }
  if (command == "minimize" && args.size() == 2) return CmdMinimize(args[1]);
  if (command == "core" && args.size() == 2) return CmdCore(args[1]);
  if (command == "check-under" && args.size() == 3) {
    return CmdCheckUnder(args[1], args[2], budget);
  }
  if (command == "views" && args.size() == 2) {
    return CmdViews(args[1], no_prune);
  }
  if (command == "query" && args.size() == 3) {
    return CmdQuery(args[1], args[2], kb_snapshot);
  }
  if (command == "consistency" && args.size() == 2) {
    return CmdConsistency(args[1], kb_snapshot);
  }
  if (command == "lint" || command == "analyze") {
    bool json = false;
    std::string deps_path, file_path;
    analysis::Severity fail_on = analysis::Severity::kError;
    bool bad = false;
    for (size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--json") {
        json = true;
      } else if (args[i] == "--deps" && i + 1 < args.size()) {
        deps_path = args[++i];
      } else if (command == "lint" && args[i] == "--fail-on" &&
                 i + 1 < args.size()) {
        const std::string& level = args[++i];
        if (level == "error") {
          fail_on = analysis::Severity::kError;
        } else if (level == "warn" || level == "warning") {
          fail_on = analysis::Severity::kWarning;
        } else if (level == "note") {
          fail_on = analysis::Severity::kNote;
        } else {
          return Fail("--fail-on needs error, warn, or note, got '" + level +
                      "'");
        }
      } else if (!StartsWith(args[i], "--") && file_path.empty()) {
        file_path = args[i];
      } else {
        bad = true;
      }
    }
    if (bad || (file_path.empty() && deps_path.empty())) return Usage();
    if (command == "analyze") return CmdAnalyze(file_path, deps_path, json);
    return CmdLint(file_path, deps_path, kb_snapshot, json, fail_on, budget);
  }
  if (command == "repl" && args.size() <= 2) {
    return CmdRepl(args.size() == 2 ? args[1] : std::string());
  }
  if (command == "serve") return CmdServe(args, jobs, budget, metrics_out);
  if (command == "client") return CmdClient(args, budget);
  if (command == "top") {
    std::string socket_path;
    std::vector<std::string> flags;
    for (size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--socket" && i + 1 < args.size()) {
        socket_path = args[++i];
      } else {
        flags.push_back(args[i]);
      }
    }
    return CmdTop(socket_path, flags);
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return Usage();
  const std::string& command = args[0];

  // Global value flags (anywhere after the command): `--jobs N` sets the
  // homomorphism fan-out width for the batch commands (0 = hardware
  // concurrency, the default); `--timeout-ms N` and `--hom-steps N` set
  // the resource budget for the governed commands; `--metrics-out F` and
  // `--trace-out F` arm the observability sinks (DESIGN.md §12).
  int64_t jobs64 = 0, timeout_ms = 0, hom_steps = 0;
  std::string metrics_out, trace_out, kb_snapshot;
  // Boolean flags first (the loop below consumes flag+value pairs).
  bool no_prune = false, cost_schedule = false;
  for (size_t i = 1; i < args.size();) {
    if (args[i] == "--no-prune") {
      no_prune = true;
      args.erase(args.begin() + long(i));
      continue;
    }
    if (args[i] == "--cost-schedule") {
      cost_schedule = true;
      args.erase(args.begin() + long(i));
      continue;
    }
    ++i;
  }
  for (size_t i = 1; i + 1 < args.size();) {
    std::string* text_slot = args[i] == "--metrics-out"  ? &metrics_out
                             : args[i] == "--trace-out"  ? &trace_out
                             : args[i] == "--kb-snapshot" ? &kb_snapshot
                                                          : nullptr;
    if (text_slot != nullptr) {
      *text_slot = args[i + 1];
      args.erase(args.begin() + long(i), args.begin() + long(i) + 2);
      continue;
    }
    int64_t* slot = args[i] == "--jobs"         ? &jobs64
                    : args[i] == "--timeout-ms" ? &timeout_ms
                    : args[i] == "--hom-steps"  ? &hom_steps
                                                : nullptr;
    if (slot == nullptr) {
      ++i;
      continue;
    }
    char* end = nullptr;
    long long value = std::strtoll(args[i + 1].c_str(), &end, 10);
    if (end == args[i + 1].c_str() || *end != '\0' || value < 0) {
      return Fail(args[i] + " needs a non-negative integer, got '" +
                  args[i + 1] + "'");
    }
    *slot = value;
    args.erase(args.begin() + long(i), args.begin() + long(i) + 2);
  }
  int jobs = int(jobs64);
  ResourceBudget budget;
  budget.timeout_ms = timeout_ms;
  budget.hom_step_budget = uint64_t(hom_steps);

  // Arm the sinks before dispatch; flush them after the command returns
  // (a quiescent point — every command joins its fan-out before exiting).
  if (!metrics_out.empty()) MetricsRegistry::set_enabled(true);
  std::optional<TraceSession> trace_session;
  if (!trace_out.empty()) trace_session.emplace();

  int exit_code = RunCommand(command, args, jobs, budget, no_prune,
                             cost_schedule, kb_snapshot, metrics_out);

  if (!metrics_out.empty() &&
      !WriteFile(metrics_out, MetricsRegistry::Get().ToJson())) {
    return Fail("cannot write " + metrics_out);
  }
  if (trace_session.has_value()) {
    if (trace_session->dropped() > 0) {
      std::fprintf(stderr,
                   "floq: trace ring overflowed; %llu oldest event(s) "
                   "dropped\n",
                   static_cast<unsigned long long>(trace_session->dropped()));
    }
    if (!WriteFile(trace_out, trace_session->ToJson())) {
      return Fail("cannot write " + trace_out);
    }
  }
  return exit_code;
}
